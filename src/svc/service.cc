#include "svc/service.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "fed/breaker.h"

namespace lakefed::svc {

namespace {

std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string HitRate(const fed::CacheStats& cs) {
  const uint64_t lookups = cs.hits + cs.misses;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f",
                lookups == 0 ? 0.0
                             : static_cast<double>(cs.hits) /
                                   static_cast<double>(lookups));
  return buf;
}

}  // namespace

std::string PriorityToString(Priority priority) {
  switch (priority) {
    case Priority::kInteractive: return "interactive";
    case Priority::kBatch: return "batch";
  }
  return "unknown";
}

// ---------------------------------------------------------------------
// Submission

Submission::Submission(std::string tenant, Priority priority,
                       fed::QueryRequest query)
    : tenant_(std::move(tenant)),
      priority_(priority),
      query_(std::move(query)) {}

const Result<fed::QueryAnswer>& Submission::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return *result_;
}

bool Submission::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void Submission::Cancel() {
  cancelled_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  // Holding mu_ makes this safe against the runner clearing `live_`: the
  // stream outlives the pointer, and ResultStream::Cancel is thread-safe.
  if (live_ != nullptr) live_->Cancel();
}

double Submission::queue_wait_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_wait_ms_;
}

double Submission::total_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ms_;
}

void Submission::Complete(Result<fed::QueryAnswer> result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;
    result_ = std::move(result);
    total_ms_ = clock_.ElapsedMillis();
    done_ = true;
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------------
// QueryService

QueryService::QueryService(const fed::FederatedEngine* engine,
                           ServiceConfig config)
    : engine_(engine),
      config_(std::move(config)),
      scheduler_(config_.scheduler) {
  run_slots_ = config_.max_concurrent_sessions != 0
                   ? config_.max_concurrent_sessions
                   : 2 * scheduler_.num_workers();
  obs::MetricsRegistry* m = engine_->metrics();
  live_gauge_ = m->GetGauge("svc.sessions.live");
  depth_gauge_ = m->GetGauge("svc.admission.queue_depth");
  admitted_counter_ = m->GetCounter("svc.admission.admitted");
  queued_counter_ = m->GetCounter("svc.admission.queued");
  shed_counter_ = m->GetCounter("svc.admission.shed");
  expired_counter_ = m->GetCounter("svc.admission.expired");
  degraded_counter_ = m->GetCounter("svc.admission.degraded");
  completed_counter_ = m->GetCounter("svc.sessions.completed");
  errors_counter_ = m->GetCounter("svc.sessions.errors");
  queue_wait_hist_ = m->GetHistogram("svc.queue_wait_ms");
  session_hist_ = m->GetHistogram("svc.session_ms");
  runners_.reserve(run_slots_);
  for (size_t i = 0; i < run_slots_; ++i) {
    runners_.emplace_back([this] { RunnerMain(); });
  }
  // Project live scheduler state into every engine metrics snapshot, so
  // /metrics and `.metrics` show queue depths and task-state counters
  // without the engine depending on svc. Removed in Shutdown.
  sampler_token_ = engine_->AddMetricsSampler(
      [this](obs::MetricsSnapshot* snapshot) { SampleScheduler(snapshot); });
}

QueryService::~QueryService() { Shutdown(); }

Result<std::shared_ptr<Submission>> QueryService::Submit(
    ServiceRequest request) {
  auto sub = std::shared_ptr<Submission>(new Submission(
      std::move(request.tenant), request.priority, std::move(request.query)));
  // Fix the absolute deadline at admission, so time spent waiting in the
  // queue counts against it like any other part of the query's latency.
  std::optional<std::chrono::milliseconds> timeout =
      sub->query_.timeout.has_value() ? sub->query_.timeout
                                      : config_.default_timeout;
  if (timeout.has_value()) {
    sub->deadline_ = CancellationToken::Clock::now() + *timeout;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return Status::Unavailable("query service is shut down");
    }
    if (QueueDepthLocked() >= config_.max_queued) {
      shed_counter_->Increment();
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(config_.max_queued) +
          " queued); back off and retry");
    }
    (sub->priority_ == Priority::kInteractive ? interactive_ : batch_)
        .push_back(sub);
    queued_counter_->Increment();
    depth_gauge_->Set(static_cast<int64_t>(QueueDepthLocked()));
  }
  cv_.notify_one();
  return sub;
}

Result<fed::QueryAnswer> QueryService::Execute(ServiceRequest request) {
  Result<std::shared_ptr<Submission>> sub = Submit(std::move(request));
  if (!sub.ok()) return sub.status();
  return (*sub)->Wait();
}

void QueryService::Shutdown() {
  // Tear the monitoring plane down first: after these return, no HTTP
  // handler or snapshot cut can still be reading service state (sampler
  // removal is a barrier — see AddMetricsSampler). Both are idempotent,
  // so every Shutdown caller may run them.
  StopMonitoring();
  engine_->RemoveMetricsSampler(sampler_token_);
  std::vector<std::shared_ptr<Submission>> orphaned;
  std::vector<std::thread> runners;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopped_) {
      // Another caller won the shutdown: wait for it to finish joining, so
      // no thread returns from Shutdown() while runners are still alive —
      // and no two threads ever join() the same std::thread.
      cv_.wait(lock, [this] { return shutdown_done_; });
      return;
    }
    stopped_ = true;
    orphaned.assign(interactive_.begin(), interactive_.end());
    orphaned.insert(orphaned.end(), batch_.begin(), batch_.end());
    interactive_.clear();
    batch_.clear();
    depth_gauge_->Set(0);
    runners.swap(runners_);
  }
  cv_.notify_all();
  for (const std::shared_ptr<Submission>& sub : orphaned) {
    sub->Complete(Status::Unavailable("query service shut down"));
  }
  for (std::thread& t : runners) t.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_done_ = true;
  }
  cv_.notify_all();
}

std::map<std::string, QueryService::TenantInfo> QueryService::Tenants()
    const {
  std::map<std::string, TenantInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [tenant, running] : tenant_running_) {
    if (running > 0) out[tenant].running = running;
  }
  for (const auto& [tenant, completed] : tenant_completed_) {
    out[tenant].completed = completed;
  }
  for (const auto& queue : {&interactive_, &batch_}) {
    for (const std::shared_ptr<Submission>& sub : *queue) {
      ++out[sub->tenant()].queued;
    }
  }
  for (const auto& [tenant, quota] : config_.tenant_quotas) {
    out[tenant].quota = quota;
  }
  for (auto& [tenant, info] : out) {
    if (config_.tenant_quotas.count(tenant) == 0) {
      info.quota = config_.default_tenant_concurrent;
    }
  }
  return out;
}

QueryService::Stats QueryService::stats() const {
  Stats s;
  s.admitted = admitted_counter_->Value();
  s.queued = queued_counter_->Value();
  s.shed = shed_counter_->Value();
  s.expired = expired_counter_->Value();
  s.degraded = degraded_counter_->Value();
  s.completed = completed_counter_->Value();
  s.errors = errors_counter_->Value();
  std::lock_guard<std::mutex> lock(mu_);
  s.queue_depth = QueueDepthLocked();
  s.running = running_;
  return s;
}

void QueryService::SampleScheduler(obs::MetricsSnapshot* snapshot) const {
  const Scheduler::Stats st = scheduler_.stats();
  snapshot->counters.push_back({"svc.scheduler.steps", st.steps});
  snapshot->counters.push_back({"svc.scheduler.steals", st.steals});
  snapshot->counters.push_back({"svc.scheduler.wakes", st.wakes});
  snapshot->counters.push_back({"svc.scheduler.io_jobs", st.io_jobs});
  snapshot->counters.push_back({"svc.scheduler.yields", st.yields});
  snapshot->counters.push_back({"svc.scheduler.blocks", st.blocks});
  snapshot->counters.push_back({"svc.scheduler.done", st.done});
  snapshot->counters.push_back({"svc.scheduler.parks", st.parks});
  snapshot->counters.push_back({"svc.scheduler.unparks", st.unparks});
  auto gauge = [snapshot](const std::string& name, size_t value) {
    snapshot->gauges.push_back({name, static_cast<int64_t>(value)});
  };
  gauge("svc.scheduler.workers", scheduler_.num_workers());
  gauge("svc.scheduler.io_threads", scheduler_.num_io_threads());
  gauge("svc.scheduler.injector_depth", scheduler_.injector_depth());
  gauge("svc.scheduler.io_queue_depth", scheduler_.io_queue_depth());
  const std::vector<size_t> depths = scheduler_.deque_depths();
  for (size_t i = 0; i < depths.size(); ++i) {
    gauge("svc.scheduler.worker." + std::to_string(i) + ".deque_depth",
          depths[i]);
  }
}

Status QueryService::StartMonitoring(uint16_t port) {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  if (exporter_ != nullptr && exporter_->running()) {
    return Status::AlreadyExists("monitoring already running on port " +
                                 std::to_string(exporter_->port()));
  }
  auto exporter = std::make_unique<obs::MetricsExporter>();
  obs::MetricsExporter::Config cfg;
  cfg.port = port;
  const fed::FederatedEngine* engine = engine_;
  cfg.metrics = [engine] { return engine->MetricsSnapshot(); };
  cfg.statusz = [this] { return StatuszJson(); };
  cfg.query_log = engine_->query_log();  // null keeps /queryz a 404
  LAKEFED_RETURN_NOT_OK(exporter->Start(std::move(cfg)));
  exporter_ = std::move(exporter);
  return Status::OK();
}

void QueryService::StopMonitoring() {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  exporter_.reset();  // ~MetricsExporter stops and joins the listener
}

bool QueryService::monitoring() const {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  return exporter_ != nullptr && exporter_->running();
}

uint16_t QueryService::monitor_port() const {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  return exporter_ != nullptr ? exporter_->port() : 0;
}

std::string QueryService::StatuszJson() const {
  std::ostringstream out;
  out << "{\"build\":{\"project\":\"lakefed\",\"compiler\":"
      << JsonStr(__VERSION__) << ",\"cxx\":" << __cplusplus << "}";
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  uptime_.ElapsedMillis() / 1000.0);
    out << ",\"uptime_s\":" << buf;
  }
  out << ",\"pool\":{\"workers\":" << scheduler_.num_workers()
      << ",\"io_threads\":" << scheduler_.num_io_threads()
      << ",\"run_slots\":" << run_slots_ << "}";
  const Stats s = stats();
  out << ",\"admission\":{\"admitted\":" << s.admitted
      << ",\"queued\":" << s.queued << ",\"shed\":" << s.shed
      << ",\"expired\":" << s.expired << ",\"degraded\":" << s.degraded
      << ",\"completed\":" << s.completed << ",\"errors\":" << s.errors
      << ",\"queue_depth\":" << s.queue_depth
      << ",\"running\":" << s.running << "}";
  out << ",\"breakers\":{";
  bool first = true;
  for (const fed::BreakerRegistry::Entry& e :
       engine_->breakers()->Snapshot()) {
    if (!first) out << ",";
    first = false;
    out << JsonStr(e.source_id) << ":"
        << JsonStr(fed::BreakerStateToString(e.state));
  }
  out << "}";
  const fed::CacheStats plan = engine_->plan_cache()->plan_stats();
  const fed::CacheStats answer = engine_->answer_cache()->stats();
  out << ",\"caches\":{\"plan\":{\"hit_rate\":" << HitRate(plan)
      << ",\"entries\":" << plan.entries << "}"
      << ",\"answer\":{\"hit_rate\":" << HitRate(answer)
      << ",\"entries\":" << answer.entries << "}}";
  out << ",\"tenants\":{";
  first = true;
  for (const auto& [tenant, info] : Tenants()) {
    if (!first) out << ",";
    first = false;
    out << JsonStr(tenant) << ":{\"running\":" << info.running
        << ",\"queued\":" << info.queued
        << ",\"completed\":" << info.completed
        << ",\"quota\":" << info.quota << "}";
  }
  out << "}";
  const obs::QueryLog* log = engine_->query_log();
  out << ",\"query_log\":{\"enabled\":" << (log != nullptr ? "true" : "false");
  if (log != nullptr) {
    out << ",\"recorded\":" << log->total_recorded()
        << ",\"slow\":" << log->slow_recorded()
        << ",\"dropped\":" << log->dropped();
  }
  out << "}}";
  return out.str();
}

fed::SchedulerInfo QueryService::SchedulerSnapshot() const {
  const Scheduler::Stats st = scheduler_.stats();
  fed::SchedulerInfo info;
  info.workers = scheduler_.num_workers();
  info.io_threads = scheduler_.num_io_threads();
  info.steps = st.steps;
  info.steals = st.steals;
  info.wakes = st.wakes;
  info.io_jobs = st.io_jobs;
  info.yields = st.yields;
  info.blocks = st.blocks;
  info.done = st.done;
  info.parks = st.parks;
  info.unparks = st.unparks;
  info.injector_depth = scheduler_.injector_depth();
  info.io_queue_depth = scheduler_.io_queue_depth();
  info.deque_depths = scheduler_.deque_depths();
  return info;
}

std::function<fed::SchedulerInfo()> QueryService::SchedulerInfoFn() const {
  return [this] { return SchedulerSnapshot(); };
}

size_t QueryService::QuotaFor(const std::string& tenant) const {
  auto it = config_.tenant_quotas.find(tenant);
  if (it != config_.tenant_quotas.end()) return it->second;
  return config_.default_tenant_concurrent;
}

size_t QueryService::QueueDepthLocked() const {
  return interactive_.size() + batch_.size();
}

std::shared_ptr<Submission> QueryService::PickLocked(
    std::vector<std::shared_ptr<Submission>>* terminal) {
  const auto now = CancellationToken::Clock::now();
  for (std::deque<std::shared_ptr<Submission>>* queue :
       {&interactive_, &batch_}) {
    for (auto it = queue->begin(); it != queue->end();) {
      const std::shared_ptr<Submission>& sub = *it;
      // Cancelled or expired while queued: terminal without a run slot.
      if (sub->cancelled() ||
          (sub->deadline_.has_value() && now >= *sub->deadline_)) {
        terminal->push_back(sub);
        it = queue->erase(it);
        continue;
      }
      const size_t quota = QuotaFor(sub->tenant());
      if (quota != 0) {
        auto running = tenant_running_.find(sub->tenant());
        if (running != tenant_running_.end() && running->second >= quota) {
          ++it;  // tenant at quota: skip, later entries may be eligible
          continue;
        }
      }
      std::shared_ptr<Submission> picked = sub;
      queue->erase(it);
      return picked;
    }
  }
  return nullptr;
}

void QueryService::RunnerMain() {
  for (;;) {
    std::shared_ptr<Submission> sub;
    std::vector<std::shared_ptr<Submission>> terminal;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (stopped_) return;
        sub = PickLocked(&terminal);
        if (sub != nullptr || !terminal.empty()) break;
        // Bounded wait: queued deadlines can expire with no other event to
        // wake a runner, so re-scan periodically.
        cv_.wait_for(lock, std::chrono::milliseconds(50));
      }
      if (sub != nullptr) {
        ++running_;
        ++tenant_running_[sub->tenant()];
      }
      depth_gauge_->Set(static_cast<int64_t>(QueueDepthLocked()));
    }
    for (const std::shared_ptr<Submission>& dead : terminal) {
      if (dead->cancelled()) {
        dead->Complete(Status::Cancelled("cancelled while queued"));
      } else {
        expired_counter_->Increment();
        dead->Complete(
            Status::DeadlineExceeded("deadline expired in admission queue"));
      }
    }
    if (sub == nullptr) continue;
    RunOne(sub);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      auto it = tenant_running_.find(sub->tenant());
      if (it != tenant_running_.end() && --it->second == 0) {
        tenant_running_.erase(it);
      }
      ++tenant_completed_[sub->tenant()];
    }
    // A finished session may unblock a quota-limited tenant: wake everyone.
    cv_.notify_all();
  }
}

void QueryService::RunOne(const std::shared_ptr<Submission>& sub) {
  const double queue_wait_ms = sub->clock_.ElapsedMillis();
  {
    std::lock_guard<std::mutex> lock(sub->mu_);
    sub->queue_wait_ms_ = queue_wait_ms;
  }
  queue_wait_hist_->Record(queue_wait_ms);

  fed::QueryRequest request = std::move(sub->query_);
  // Remaining deadline budget after the queue wait.
  if (sub->deadline_.has_value()) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        *sub->deadline_ - CancellationToken::Clock::now());
    if (remaining.count() <= 0) {
      expired_counter_->Increment();
      sub->Complete(
          Status::DeadlineExceeded("deadline expired in admission queue"));
      return;
    }
    request.timeout = remaining;
  }
  // Execution substrate: run the session's operators on the shared pool
  // unless configured (or explicitly overridden by the caller) otherwise.
  if (config_.use_scheduler && request.options.scheduler == nullptr) {
    request.options.scheduler = &scheduler_;
  }
  // Attribution: every admitted session carries its tenant so the flight
  // recorder (and sys.queries) can say who ran what, caching or not.
  if (request.options.tenant.empty()) {
    request.options.tenant = sub->tenant();
  }
  // Reuse layer: cache entries are scoped by tenant so byte quotas (and
  // the shell's `.cache` breakdown) attribute footprint to its owner.
  if ((request.options.plan_cache || request.options.answer_cache) &&
      request.options.cache_scope.empty()) {
    request.options.cache_scope = sub->tenant();
    uint64_t quota = config_.tenant_cache_quota;
    auto it = config_.tenant_cache_quotas.find(sub->tenant());
    if (it != config_.tenant_cache_quotas.end()) quota = it->second;
    if (quota > 0) {
      engine_->plan_cache()->SetScopeQuota(sub->tenant(), quota);
      engine_->answer_cache()->SetScopeQuota(sub->tenant(), quota);
    }
  }
  // Graceful degradation: under queue pressure a batch query is worth more
  // as a fast partial answer than as a queue occupant that may fail late.
  if (config_.degrade_batch_under_pressure &&
      sub->priority_ == Priority::kBatch &&
      request.options.failure_mode == fed::FailureMode::kFailFast) {
    size_t depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      depth = QueueDepthLocked();
    }
    if (depth > config_.max_queued / 2) {
      request.options.failure_mode = fed::FailureMode::kBestEffort;
      degraded_counter_->Increment();
    }
  }

  admitted_counter_->Increment();
  live_gauge_->Add(1);
  Result<std::unique_ptr<fed::ResultStream>> stream =
      engine_->CreateSession(std::move(request));
  Result<fed::QueryAnswer> outcome = Status::Internal("session not run");
  if (!stream.ok()) {
    outcome = stream.status();
  } else {
    {
      std::lock_guard<std::mutex> lock(sub->mu_);
      sub->live_ = stream->get();
    }
    // A cancel that raced session creation: forward it to the live stream.
    if (sub->cancelled()) (*stream)->Cancel();
    outcome = (*stream)->Drain();
    {
      std::lock_guard<std::mutex> lock(sub->mu_);
      sub->live_ = nullptr;
    }
  }
  live_gauge_->Add(-1);
  if (outcome.ok()) {
    completed_counter_->Increment();
  } else {
    errors_counter_->Increment();
  }
  session_hist_->Record(sub->clock_.ElapsedMillis() - queue_wait_ms);
  sub->Complete(std::move(outcome));
}

}  // namespace lakefed::svc
