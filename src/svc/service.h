// Multi-tenant query service: the admission-controlled front door of the
// federated engine. Wraps FederatedEngine::CreateSession with
//
//  * a bounded admission queue — requests beyond the bound are shed
//    immediately with kResourceExhausted (back-pressure to the caller, not
//    an unbounded pile-up),
//  * two priority classes — interactive requests always dispatch before
//    batch requests,
//  * per-tenant concurrency quotas — one tenant cannot monopolize the run
//    slots; over-quota tenants wait in the queue while others dispatch,
//  * deadlines that include queue time — a request whose deadline expires
//    while still queued completes with kDeadlineExceeded without ever
//    occupying a run slot,
//  * graceful degradation — under queue pressure, batch requests are
//    downgraded to best-effort (partial answers from healthy sources
//    instead of fail-fast) when enabled.
//
// Execution substrate: every admitted session runs its operators on the
// service's shared svc::Scheduler worker pool (PlanOptions::scheduler), so
// total thread count is workers + I/O pool + run slots — independent of how
// many sessions are in flight. `use_scheduler = false` reverts admitted
// sessions to the historic thread-per-operator dataflow (same answers).
//
// Observability: service gauges (svc.sessions.live,
// svc.admission.queue_depth), counters (svc.admission.{admitted,shed,
// queued,expired,degraded}, svc.sessions.{completed,errors}) and latency
// histograms (svc.queue_wait_ms, svc.session_ms) are recorded into the
// engine's registry, so they surface through FederatedEngine::
// MetricsSnapshot next to the engine's own metrics.

#ifndef LAKEFED_SVC_SERVICE_H_
#define LAKEFED_SVC_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "fed/engine.h"
#include "fed/meta_source.h"
#include "fed/session.h"
#include "obs/exporter.h"
#include "svc/scheduler.h"

namespace lakefed::svc {

enum class Priority {
  kInteractive,  // dispatched first
  kBatch,        // dispatched when no interactive request is eligible
};

std::string PriorityToString(Priority priority);

struct ServiceConfig {
  // The shared worker pool every admitted session runs on.
  Scheduler::Config scheduler;

  // Run slots: sessions executing concurrently. 0 = 2 * compute workers.
  size_t max_concurrent_sessions = 0;

  // Admission-queue bound: requests arriving when this many are already
  // waiting are shed with kResourceExhausted.
  size_t max_queued = 1024;

  // Per-tenant cap on concurrently running sessions. 0 = unlimited.
  // `tenant_quotas` overrides the default for specific tenants.
  size_t default_tenant_concurrent = 0;
  std::map<std::string, size_t> tenant_quotas;

  // Per-tenant byte quota on the engine's shared plan and sub-answer
  // caches (fed/cache.h), applied when a session runs with caching on:
  // the tenant id becomes the entries' cache scope, and a tenant over its
  // quota evicts its own least-recently-used entries first — one tenant's
  // churn cannot flush everyone else's cache. 0 = unlimited;
  // `tenant_cache_quotas` overrides the default for specific tenants.
  uint64_t tenant_cache_quota = 0;
  std::map<std::string, uint64_t> tenant_cache_quotas;

  // Deadline applied to requests that carry none of their own. Queue wait
  // counts against it. nullopt = no default deadline.
  std::optional<std::chrono::milliseconds> default_timeout;

  // Run sessions on the shared scheduler (the point of the service). Off =
  // the historic thread-per-operator dataflow per session, for A/B runs.
  bool use_scheduler = true;

  // Under queue pressure (depth > max_queued / 2), downgrade batch
  // requests to FailureMode::kBestEffort so they return partial answers
  // from healthy sources instead of failing outright.
  bool degrade_batch_under_pressure = true;
};

// One query handed to the service.
struct ServiceRequest {
  std::string tenant = "default";
  Priority priority = Priority::kInteractive;
  fed::QueryRequest query;
};

// Handle to a submitted query. Returned by QueryService::Submit; the
// result materializes asynchronously. Thread-safe.
class Submission {
 public:
  // Blocks until the query reached a terminal state (answer, error, shed
  // at dispatch, expired, cancelled) and returns the outcome.
  const Result<fed::QueryAnswer>& Wait();

  bool done() const;

  // Cooperative cancel: a queued submission completes with kCancelled
  // without occupying a run slot; a running one has its session token
  // cancelled (the stream unwinds and reports kCancelled). Idempotent.
  void Cancel();

  const std::string& tenant() const { return tenant_; }
  Priority priority() const { return priority_; }

  // Admission -> dispatch (or terminal-in-queue) / admission -> terminal.
  // Stable once done().
  double queue_wait_ms() const;
  double total_ms() const;

 private:
  friend class QueryService;

  Submission(std::string tenant, Priority priority, fed::QueryRequest query);

  void Complete(Result<fed::QueryAnswer> result);
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  const std::string tenant_;
  const Priority priority_;
  fed::QueryRequest query_;
  // Absolute deadline (request timeout or service default), fixed at
  // admission so queue wait counts against it.
  std::optional<CancellationToken::Clock::time_point> deadline_;
  Stopwatch clock_;  // since admission

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::atomic<bool> cancelled_{false};
  fed::ResultStream* live_ = nullptr;  // the running stream, while running
  std::optional<Result<fed::QueryAnswer>> result_;
  double queue_wait_ms_ = 0;
  double total_ms_ = 0;
};

class QueryService {
 public:
  // `engine` must outlive the service. The service seals the engine on the
  // first dispatched session (CreateSession semantics).
  explicit QueryService(const fed::FederatedEngine* engine,
                        ServiceConfig config = {});
  ~QueryService();  // Shutdown()
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Admission control: enqueues the request and returns its handle, or
  // kResourceExhausted when the admission queue is at its bound (the
  // caller should back off and retry), or kUnavailable after Shutdown.
  Result<std::shared_ptr<Submission>> Submit(ServiceRequest request);

  // Blocking convenience: Submit + Wait.
  Result<fed::QueryAnswer> Execute(ServiceRequest request);

  // Fails every queued request with kUnavailable, waits for running
  // sessions to finish, stops the run slots. Idempotent.
  void Shutdown();

  // Introspection (the shell's `.tenants`).
  struct TenantInfo {
    size_t running = 0;
    size_t queued = 0;
    size_t completed = 0;  // cumulative over the service's lifetime
    size_t quota = 0;      // 0 = unlimited
  };
  std::map<std::string, TenantInfo> Tenants() const;

  struct Stats {
    uint64_t admitted = 0;   // dispatched into a run slot
    uint64_t queued = 0;     // accepted into the admission queue
    uint64_t shed = 0;       // rejected with kResourceExhausted
    uint64_t expired = 0;    // deadline passed while queued
    uint64_t degraded = 0;   // batch requests downgraded to best-effort
    uint64_t completed = 0;  // sessions finished OK
    uint64_t errors = 0;     // sessions finished with an error status
    size_t queue_depth = 0;
    size_t running = 0;
  };
  Stats stats() const;

  Scheduler* scheduler() { return &scheduler_; }
  size_t run_slots() const { return run_slots_; }

  // -------------------------------------------------------------------
  // Monitoring plane (obs/exporter.h): an embedded HTTP endpoint bound to
  // 127.0.0.1:<port> (0 = ephemeral) serving /metrics (Prometheus text
  // exposition of the engine snapshot, scheduler series included via the
  // sampler this service registers), /healthz, /statusz (JSON summary
  // below) and /queryz (flight-recorder JSONL, when the engine's query
  // log is enabled). Off until StartMonitoring; stopped by Shutdown.
  Status StartMonitoring(uint16_t port);
  void StopMonitoring();
  bool monitoring() const;
  uint16_t monitor_port() const;  // 0 when not monitoring

  // The /statusz document: build info, uptime, pool shape, breaker states,
  // cache hit rates and per-tenant admission stats.
  std::string StatuszJson() const;

  // Point-in-time worker-pool state in fed-visible form — the provider the
  // sys.scheduler meta-table wants:
  //   engine.RegisterSource(std::make_unique<fed::MetaSource>(
  //       &engine, fed::MetaSource::Providers{service.SchedulerInfoFn()}));
  // The returned function captures `this`: keep the service alive as long
  // as the meta-source may be queried.
  fed::SchedulerInfo SchedulerSnapshot() const;
  std::function<fed::SchedulerInfo()> SchedulerInfoFn() const;

 private:
  size_t QuotaFor(const std::string& tenant) const;
  size_t QueueDepthLocked() const;
  // Next dispatchable submission (priority order, quota-respecting);
  // cancelled/expired entries found during the scan are moved to
  // `terminal` for completion outside the lock.
  std::shared_ptr<Submission> PickLocked(
      std::vector<std::shared_ptr<Submission>>* terminal);
  void RunnerMain();
  void RunOne(const std::shared_ptr<Submission>& sub);

  const fed::FederatedEngine* engine_;
  ServiceConfig config_;
  Scheduler scheduler_;
  size_t run_slots_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Submission>> interactive_;
  std::deque<std::shared_ptr<Submission>> batch_;
  std::map<std::string, size_t> tenant_running_;
  std::map<std::string, size_t> tenant_completed_;
  size_t running_ = 0;
  bool stopped_ = false;
  bool shutdown_done_ = false;  // the winning Shutdown() joined all runners
  std::vector<std::thread> runners_;

  // Projects svc.scheduler.* series into an engine metrics snapshot (the
  // sampler body registered with AddMetricsSampler).
  void SampleScheduler(obs::MetricsSnapshot* snapshot) const;

  // Monitoring plane state. The sampler token is registered in the ctor
  // and removed in Shutdown (removal is a barrier: after it, no snapshot
  // can still be running the sampler against a dying scheduler).
  Stopwatch uptime_;
  uint64_t sampler_token_ = 0;
  mutable std::mutex monitor_mu_;
  std::unique_ptr<obs::MetricsExporter> exporter_;

  // Service metrics, recorded into the engine's registry (not owned).
  obs::Gauge* live_gauge_;
  obs::Gauge* depth_gauge_;
  obs::Counter* admitted_counter_;
  obs::Counter* queued_counter_;
  obs::Counter* shed_counter_;
  obs::Counter* expired_counter_;
  obs::Counter* degraded_counter_;
  obs::Counter* completed_counter_;
  obs::Counter* errors_counter_;
  obs::Histogram* queue_wait_hist_;
  obs::Histogram* session_hist_;
};

}  // namespace lakefed::svc

#endif  // LAKEFED_SVC_SERVICE_H_
