#include "svc/scheduler.h"

#include <algorithm>
#include <utility>

namespace lakefed::svc {
namespace {

// Which scheduler (if any) owns the current thread, and its worker index.
// Thread-locals rather than a map lookup: Enqueue is on the step hot path.
thread_local Scheduler* tl_scheduler = nullptr;
thread_local size_t tl_worker_index = 0;

}  // namespace

// Per-task scheduling state. The atomic `state` is the whole wakeup
// protocol:
//
//   kIdle ──Wake──▶ kQueued ──worker──▶ kRunning ──Step()──▶
//     kDone                      (terminal)
//     kYield / woken mid-step -> kQueued (re-enqueued)
//     kBlocked, no wake        -> kIdle  (parked)
//
// A Wake() during kRunning CASes to kRunningNotified; the worker observes
// the failed kRunning->kIdle CAS after Step() returns kBlocked and
// re-enqueues — the classic lost-wakeup race resolved without locks. Every
// transition into kQueued enqueues the handle exactly once, so a handle
// occupies at most one deque slot at any time.
class Scheduler::TaskHandle {
 public:
  enum State : int { kIdle, kQueued, kRunning, kRunningNotified, kDone };

  explicit TaskHandle(std::unique_ptr<Task> task) : task_(std::move(task)) {}

  std::atomic<int> state{kIdle};
  std::unique_ptr<Task> task_;
};

Scheduler::Scheduler() : Scheduler(Config()) {}

Scheduler::Scheduler(Config config) {
  size_t workers = config.workers;
  if (workers == 0) {
    workers = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  size_t io_threads = config.io_threads;
  if (io_threads == 0) io_threads = std::max<size_t>(4, 2 * workers);

  deques_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  worker_threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this, i] { WorkerMain(i); });
  }
  io_thread_objs_.reserve(io_threads);
  for (size_t i = 0; i < io_threads; ++i) {
    io_thread_objs_.emplace_back([this] { IoMain(); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : worker_threads_) t.join();
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    io_stop_ = true;
  }
  io_cv_.notify_all();
  for (std::thread& t : io_thread_objs_) t.join();
}

Scheduler::TaskRef Scheduler::Register(std::unique_ptr<Task> task) {
  return std::make_shared<TaskHandle>(std::move(task));
}

void Scheduler::Wake(const TaskRef& handle) {
  for (;;) {
    int s = handle->state.load(std::memory_order_acquire);
    switch (s) {
      case TaskHandle::kIdle: {
        int expected = TaskHandle::kIdle;
        if (handle->state.compare_exchange_weak(expected, TaskHandle::kQueued,
                                                std::memory_order_acq_rel)) {
          wakes_.fetch_add(1, std::memory_order_relaxed);
          Enqueue(handle, /*prefer_local=*/true);
          return;
        }
        break;  // lost the race; re-read
      }
      case TaskHandle::kRunning: {
        int expected = TaskHandle::kRunning;
        if (handle->state.compare_exchange_weak(
                expected, TaskHandle::kRunningNotified,
                std::memory_order_acq_rel)) {
          wakes_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        break;
      }
      case TaskHandle::kQueued:
      case TaskHandle::kRunningNotified:
      case TaskHandle::kDone:
        return;  // wake already pending, or nothing left to wake
      default:
        return;
    }
  }
}

void Scheduler::SubmitIo(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    io_jobs_.push_back(std::move(job));
  }
  io_cv_.notify_one();
}

Scheduler::Stats Scheduler::stats() const {
  Stats s;
  s.steps = steps_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.wakes = wakes_.load(std::memory_order_relaxed);
  s.io_jobs = io_count_.load(std::memory_order_relaxed);
  s.yields = yields_.load(std::memory_order_relaxed);
  s.blocks = blocks_.load(std::memory_order_relaxed);
  s.done = done_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.unparks = unparks_.load(std::memory_order_relaxed);
  return s;
}

size_t Scheduler::injector_depth() const {
  std::lock_guard<std::mutex> lock(sleep_mu_);
  return injector_.size();
}

size_t Scheduler::io_queue_depth() const {
  std::lock_guard<std::mutex> lock(io_mu_);
  return io_jobs_.size();
}

std::vector<size_t> Scheduler::deque_depths() const {
  std::vector<size_t> depths;
  depths.reserve(deques_.size());
  for (const auto& dq : deques_) {
    std::lock_guard<std::mutex> lock(dq->mu);
    depths.push_back(dq->tasks.size());
  }
  return depths;
}

void Scheduler::Enqueue(TaskRef handle, bool prefer_local) {
  // The ready_ increment must happen under sleep_mu_: a parked-bound worker
  // evaluates the wait predicate (ready_ == 0) while holding the mutex, and
  // an increment+notify slipped between its check and its block would be
  // lost — with every worker asleep, the task would be stranded until an
  // unrelated enqueue. Holding the mutex for the increment makes the
  // predicate change and the notify visible to any waiter.
  if (prefer_local && tl_scheduler == this) {
    {
      WorkerDeque& dq = *deques_[tl_worker_index];
      std::lock_guard<std::mutex> lock(dq.mu);
      dq.tasks.push_back(std::move(handle));
    }
    std::lock_guard<std::mutex> lock(sleep_mu_);
    ready_.fetch_add(1, std::memory_order_release);
  } else {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    injector_.push_back(std::move(handle));
    ready_.fetch_add(1, std::memory_order_release);
  }
  idle_cv_.notify_one();
}

Scheduler::TaskRef Scheduler::NextTask(size_t self) {
  {
    WorkerDeque& own = *deques_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      TaskRef h = std::move(own.tasks.back());
      own.tasks.pop_back();
      ready_.fetch_sub(1, std::memory_order_acq_rel);
      return h;
    }
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    if (!injector_.empty()) {
      TaskRef h = std::move(injector_.front());
      injector_.pop_front();
      ready_.fetch_sub(1, std::memory_order_acq_rel);
      return h;
    }
  }
  const size_t n = deques_.size();
  for (size_t i = 1; i < n; ++i) {
    WorkerDeque& peer = *deques_[(self + i) % n];
    std::lock_guard<std::mutex> lock(peer.mu);
    if (!peer.tasks.empty()) {
      TaskRef h = std::move(peer.tasks.front());
      peer.tasks.pop_front();
      ready_.fetch_sub(1, std::memory_order_acq_rel);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return h;
    }
  }
  return nullptr;
}

void Scheduler::RunTask(const TaskRef& handle) {
  handle->state.store(TaskHandle::kRunning, std::memory_order_release);
  TaskResult r = handle->task_->Step();
  steps_.fetch_add(1, std::memory_order_relaxed);
  switch (r) {
    case TaskResult::kDone:
      done_.fetch_add(1, std::memory_order_relaxed);
      // Overwrites a concurrent kRunningNotified: a wake racing with
      // completion has nothing left to run.
      handle->state.store(TaskHandle::kDone, std::memory_order_release);
      // Release the task object now. Queue readiness listeners hold the
      // TaskRef for the dataflow's lifetime, and the task holds shared_ptrs
      // to its queues — without this reset the cycle
      // queue -> listener -> handle -> task -> queue would leak every
      // query's queues and operator state. A kDone handle is never stepped
      // or enqueued again and Wake() only reads the atomic state, so no
      // other thread can touch task_ past this point.
      handle->task_.reset();
      break;
    case TaskResult::kYield:
      yields_.fetch_add(1, std::memory_order_relaxed);
      handle->state.store(TaskHandle::kQueued, std::memory_order_release);
      Enqueue(handle, /*prefer_local=*/true);
      break;
    case TaskResult::kBlocked: {
      blocks_.fetch_add(1, std::memory_order_relaxed);
      int expected = TaskHandle::kRunning;
      if (!handle->state.compare_exchange_strong(expected, TaskHandle::kIdle,
                                                 std::memory_order_acq_rel)) {
        // A wake slipped in while Step() was deciding to block — the event
        // it was about to wait for already happened. Run it again.
        handle->state.store(TaskHandle::kQueued, std::memory_order_release);
        Enqueue(handle, /*prefer_local=*/true);
      }
      break;
    }
  }
}

void Scheduler::WorkerMain(size_t index) {
  tl_scheduler = this;
  tl_worker_index = index;
  for (;;) {
    TaskRef handle = NextTask(index);
    if (handle == nullptr) {
      std::unique_lock<std::mutex> lock(sleep_mu_);
      if (!stop_ && ready_.load(std::memory_order_acquire) == 0) {
        parks_.fetch_add(1, std::memory_order_relaxed);
        idle_cv_.wait(lock, [this] {
          return stop_ || ready_.load(std::memory_order_acquire) > 0;
        });
        unparks_.fetch_add(1, std::memory_order_relaxed);
      }
      if (stop_) return;
      continue;
    }
    RunTask(handle);
  }
}

void Scheduler::IoMain() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(io_mu_);
      io_cv_.wait(lock, [this] { return io_stop_ || !io_jobs_.empty(); });
      if (io_jobs_.empty()) return;  // stopped and drained
      job = std::move(io_jobs_.front());
      io_jobs_.pop_front();
    }
    io_count_.fetch_add(1, std::memory_order_relaxed);
    job();
  }
}

}  // namespace lakefed::svc
