// Relational mappings (R2RML-style, simplified): how the entities of one RDF
// class are stored in the 3NF tables of a relational source.
//
// Paper assumptions baked in: tables are normalized to 3NF and the subjects
// of SPARQL queries map to the primary keys of the base tables
// (Jozashoori & Vidal's best-case layout). Multi-valued predicates live in
// side tables (pk, value) joined through a foreign key — that is what 3NF
// normalization of the RDF data produces.

#ifndef LAKEFED_MAPPING_RELATIONAL_MAPPING_H_
#define LAKEFED_MAPPING_RELATIONAL_MAPPING_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "mapping/rdf_mt.h"
#include "rdf/term.h"
#include "rel/value.h"

namespace lakefed::mapping {

// An IRI template with exactly one "{}" placeholder, e.g.
// "http://lslod.example.org/diseasome/disease/{}".
class IriTemplate {
 public:
  IriTemplate() = default;
  explicit IriTemplate(std::string pattern);

  bool valid() const { return !prefix_.empty() || !suffix_.empty(); }

  // Renders the IRI for a value ("{}" replaced by the value's text).
  std::string Format(const rel::Value& value) const;

  // Recovers the value text from an IRI; nullopt if it does not match.
  std::optional<std::string> Extract(const std::string& iri) const;

  std::string pattern() const { return prefix_ + "{}" + suffix_; }

 private:
  std::string prefix_;
  std::string suffix_;
};

// How one predicate of a class maps to relational storage.
struct PredicateMapping {
  std::string predicate;  // IRI
  // Where the value lives: either a column of the base table (link_table
  // empty) or a column of a side table joined via base.pk = side.fk.
  std::string column;
  std::string link_table;  // empty for base-table columns
  std::string link_fk;     // FK column in link_table referencing base pk
  // Object construction: literal (with datatype) or templated IRI.
  bool object_is_iri = false;
  IriTemplate iri_template;        // when object_is_iri
  std::string literal_datatype;    // "" = plain literal

  bool InBaseTable() const { return link_table.empty(); }
};

// How one RDF class maps onto the tables of a relational source.
struct ClassMapping {
  std::string class_iri;
  std::string base_table;
  std::string pk_column;
  IriTemplate subject_template;  // subject IRI <-> pk value
  std::vector<PredicateMapping> predicates;

  const PredicateMapping* FindPredicate(const std::string& iri) const;
};

// All class mappings of one relational source.
struct SourceMapping {
  std::string source_id;
  std::vector<ClassMapping> classes;

  const ClassMapping* FindClass(const std::string& iri) const;
  // The class mapping (if any) that declares the given predicate.
  const ClassMapping* ClassOfPredicate(const std::string& predicate) const;
};

// --- value <-> term conversion ----------------------------------------------

// Builds the RDF term for a relational cell according to `pm`.
rdf::Term TermFromValue(const rel::Value& value, const PredicateMapping& pm);

// Builds the subject term for a pk value.
rdf::Term SubjectFromValue(const rel::Value& value, const ClassMapping& cm);

// Converts an RDF term (from a SPARQL constant) into the relational value
// the mapped column stores. Inverse of TermFromValue.
Result<rel::Value> ValueFromTerm(const rdf::Term& term,
                                 const PredicateMapping& pm);

// Converts a subject IRI into the pk value. Inverse of SubjectFromValue.
Result<rel::Value> PkValueFromSubject(const rdf::Term& subject,
                                      const ClassMapping& cm);

// Parses a literal's lexical form into a typed relational value based on the
// declared datatype ("" or string types -> STRING).
rel::Value ValueFromLexical(const std::string& lexical,
                            const std::string& datatype);

// Derives the RDF molecule templates a relational source exposes through its
// mappings (one molecule per mapped class; predicate links are inferred from
// IRI-valued predicates whose template matches another class's subjects).
std::vector<RdfMt> MoleculesFromMapping(const SourceMapping& mapping);

}  // namespace lakefed::mapping

#endif  // LAKEFED_MAPPING_RELATIONAL_MAPPING_H_
