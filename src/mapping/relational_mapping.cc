#include "mapping/relational_mapping.h"

#include <cstdlib>

#include "common/string_util.h"

namespace lakefed::mapping {

IriTemplate::IriTemplate(std::string pattern) {
  size_t pos = pattern.find("{}");
  if (pos == std::string::npos) {
    prefix_ = std::move(pattern);
    return;
  }
  prefix_ = pattern.substr(0, pos);
  suffix_ = pattern.substr(pos + 2);
}

std::string IriTemplate::Format(const rel::Value& value) const {
  return prefix_ + value.ToString() + suffix_;
}

std::optional<std::string> IriTemplate::Extract(const std::string& iri) const {
  if (!StartsWith(iri, prefix_) || !EndsWith(iri, suffix_)) {
    return std::nullopt;
  }
  size_t len = iri.size() - prefix_.size() - suffix_.size();
  if (iri.size() < prefix_.size() + suffix_.size()) return std::nullopt;
  return iri.substr(prefix_.size(), len);
}

const PredicateMapping* ClassMapping::FindPredicate(
    const std::string& iri) const {
  for (const PredicateMapping& pm : predicates) {
    if (pm.predicate == iri) return &pm;
  }
  return nullptr;
}

const ClassMapping* SourceMapping::FindClass(const std::string& iri) const {
  for (const ClassMapping& cm : classes) {
    if (cm.class_iri == iri) return &cm;
  }
  return nullptr;
}

const ClassMapping* SourceMapping::ClassOfPredicate(
    const std::string& predicate) const {
  for (const ClassMapping& cm : classes) {
    if (cm.FindPredicate(predicate) != nullptr) return &cm;
  }
  return nullptr;
}

rel::Value ValueFromLexical(const std::string& lexical,
                            const std::string& datatype) {
  if (Contains(datatype, "integer") || Contains(datatype, "long") ||
      Contains(datatype, "#int")) {
    return rel::Value(
        static_cast<int64_t>(std::strtoll(lexical.c_str(), nullptr, 10)));
  }
  if (Contains(datatype, "double") || Contains(datatype, "decimal") ||
      Contains(datatype, "float")) {
    return rel::Value(std::strtod(lexical.c_str(), nullptr));
  }
  return rel::Value(lexical);
}

rdf::Term TermFromValue(const rel::Value& value, const PredicateMapping& pm) {
  if (pm.object_is_iri) {
    return rdf::Term::Iri(pm.iri_template.Format(value));
  }
  return rdf::Term::Literal(value.ToString(), pm.literal_datatype);
}

rdf::Term SubjectFromValue(const rel::Value& value, const ClassMapping& cm) {
  return rdf::Term::Iri(cm.subject_template.Format(value));
}

Result<rel::Value> ValueFromTerm(const rdf::Term& term,
                                 const PredicateMapping& pm) {
  if (pm.object_is_iri) {
    if (!term.is_iri()) {
      return Status::TypeError("expected IRI object for predicate " +
                               pm.predicate + ", got " + term.ToString());
    }
    auto text = pm.iri_template.Extract(term.value());
    if (!text.has_value()) {
      return Status::InvalidArgument("IRI " + term.value() +
                                     " does not match template " +
                                     pm.iri_template.pattern());
    }
    // IRI-valued columns store the key text; keys that look like integers
    // are stored as INT64 so they compare correctly against key columns.
    if (!text->empty() &&
        text->find_first_not_of("0123456789-") == std::string::npos) {
      return ValueFromLexical(*text, rdf::kXsdInteger);
    }
    return rel::Value(*text);
  }
  if (!term.is_literal()) {
    return Status::TypeError("expected literal object for predicate " +
                             pm.predicate + ", got " + term.ToString());
  }
  return ValueFromLexical(term.value(), pm.literal_datatype);
}

std::vector<RdfMt> MoleculesFromMapping(const SourceMapping& mapping) {
  std::vector<RdfMt> out;
  for (const ClassMapping& cm : mapping.classes) {
    RdfMt molecule;
    molecule.class_iri = cm.class_iri;
    molecule.sources.push_back(mapping.source_id);
    molecule.predicates.insert(rdf::kRdfType);
    for (const PredicateMapping& pm : cm.predicates) {
      molecule.predicates.insert(pm.predicate);
      if (!pm.object_is_iri) continue;
      // Link detection: an IRI-valued predicate whose template equals the
      // subject template of another mapped class (same or other source part
      // of this mapping) links the two molecules.
      for (const ClassMapping& other : mapping.classes) {
        if (pm.iri_template.pattern() == other.subject_template.pattern()) {
          molecule.links[pm.predicate] = other.class_iri;
        }
      }
    }
    out.push_back(std::move(molecule));
  }
  return out;
}

Result<rel::Value> PkValueFromSubject(const rdf::Term& subject,
                                      const ClassMapping& cm) {
  if (!subject.is_iri()) {
    return Status::TypeError("subject must be an IRI, got " +
                             subject.ToString());
  }
  auto text = cm.subject_template.Extract(subject.value());
  if (!text.has_value()) {
    return Status::InvalidArgument("subject IRI " + subject.value() +
                                   " does not match template " +
                                   cm.subject_template.pattern());
  }
  if (!text->empty() &&
      text->find_first_not_of("0123456789-") == std::string::npos) {
    return rel::Value(
        static_cast<int64_t>(std::strtoll(text->c_str(), nullptr, 10)));
  }
  return rel::Value(*text);
}

}  // namespace lakefed::mapping
