#include "mapping/rdf_mt.h"

#include <algorithm>

namespace lakefed::mapping {

void RdfMtCatalog::Add(const RdfMt& molecule) {
  auto it = molecules_.find(molecule.class_iri);
  if (it == molecules_.end()) {
    molecules_[molecule.class_iri] = molecule;
    return;
  }
  RdfMt& existing = it->second;
  existing.cardinality += molecule.cardinality;
  existing.predicates.insert(molecule.predicates.begin(),
                             molecule.predicates.end());
  for (const auto& [pred, cls] : molecule.links) existing.links[pred] = cls;
  for (const std::string& source : molecule.sources) {
    if (std::find(existing.sources.begin(), existing.sources.end(), source) ==
        existing.sources.end()) {
      existing.sources.push_back(source);
    }
  }
}

const RdfMt* RdfMtCatalog::Find(const std::string& class_iri) const {
  auto it = molecules_.find(class_iri);
  return it == molecules_.end() ? nullptr : &it->second;
}

std::vector<const RdfMt*> RdfMtCatalog::Covering(
    const std::optional<std::string>& class_iri,
    const std::vector<std::string>& predicates) const {
  std::vector<const RdfMt*> out;
  for (const auto& [cls, molecule] : molecules_) {
    if (class_iri.has_value() && cls != *class_iri) continue;
    bool covers = true;
    for (const std::string& pred : predicates) {
      if (molecule.predicates.count(pred) == 0) {
        covers = false;
        break;
      }
    }
    if (covers) out.push_back(&molecule);
  }
  return out;
}

std::vector<RdfMt> RdfMtCatalog::ExtractFromTripleStore(
    const std::string& source_id, const rdf::TripleStore& store) {
  std::vector<RdfMt> out;
  for (const rdf::Term& cls : store.DistinctClasses()) {
    if (!cls.is_iri()) continue;
    RdfMt molecule;
    molecule.class_iri = cls.value();
    molecule.sources.push_back(source_id);
    molecule.cardinality =
        store.Match(std::nullopt, rdf::Term::Iri(rdf::kRdfType), cls).size();
    for (const rdf::Term& pred : store.PredicatesOfClass(cls)) {
      molecule.predicates.insert(pred.value());
    }
    // Links: predicates whose objects are typed instances of another class.
    store.MatchVisit(std::nullopt, rdf::Term::Iri(rdf::kRdfType), cls,
                     [&](const rdf::Triple& inst) {
                       store.MatchVisit(
                           inst.subject, std::nullopt, std::nullopt,
                           [&](const rdf::Triple& t) {
                             if (!t.object.is_iri()) return true;
                             auto types = store.Match(
                                 t.object, rdf::Term::Iri(rdf::kRdfType),
                                 std::nullopt);
                             if (!types.empty() && types[0].object.is_iri()) {
                               molecule.links[t.predicate.value()] =
                                   types[0].object.value();
                             }
                             return true;
                           });
                       return true;
                     });
    out.push_back(std::move(molecule));
  }
  return out;
}

}  // namespace lakefed::mapping
