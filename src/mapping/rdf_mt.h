// RDF Molecule Templates (RDF-MTs), following MULDER/Ontario: an abstract
// description of the classes of entities a source can answer about — the
// class IRI, the set of predicates its instances carry, and links to other
// molecules. The mediator uses them for source selection.

#ifndef LAKEFED_MAPPING_RDF_MT_H_
#define LAKEFED_MAPPING_RDF_MT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rdf/triple_store.h"

namespace lakefed::mapping {

struct RdfMt {
  std::string class_iri;
  std::set<std::string> predicates;  // predicate IRIs (rdf:type included)
  // predicate IRI -> class IRI of the linked molecule (inter-molecule links).
  std::map<std::string, std::string> links;
  // ids of the sources able to answer this molecule.
  std::vector<std::string> sources;
  // Number of instances of the class (summed over sources when merged);
  // the mediator's join-ordering estimates start from this.
  size_t cardinality = 0;
};

class RdfMtCatalog {
 public:
  // Adds/merges a molecule description (same class from another source
  // merges predicate sets and source lists).
  void Add(const RdfMt& molecule);

  const RdfMt* Find(const std::string& class_iri) const;

  // Molecules whose predicate set covers every predicate in `predicates`,
  // optionally constrained to a class. This implements ANAPSID/MULDER-style
  // predicate-containment source selection.
  std::vector<const RdfMt*> Covering(
      const std::optional<std::string>& class_iri,
      const std::vector<std::string>& predicates) const;

  size_t size() const { return molecules_.size(); }
  const std::map<std::string, RdfMt>& molecules() const { return molecules_; }

  // Extracts molecule templates from a native RDF source: one molecule per
  // rdf:type class, with the predicates its instances use.
  static std::vector<RdfMt> ExtractFromTripleStore(
      const std::string& source_id, const rdf::TripleStore& store);

 private:
  std::map<std::string, RdfMt> molecules_;  // by class IRI
};

}  // namespace lakefed::mapping

#endif  // LAKEFED_MAPPING_RDF_MT_H_
