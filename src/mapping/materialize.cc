#include "mapping/materialize.h"

namespace lakefed::mapping {

Status MaterializeTriples(const rel::Database& db,
                          const SourceMapping& mapping,
                          rdf::TripleStore* store) {
  for (const ClassMapping& cm : mapping.classes) {
    const rel::Table* base = db.catalog().GetTable(cm.base_table);
    if (base == nullptr) {
      return Status::NotFound("mapped base table '" + cm.base_table +
                              "' missing in database " + db.name());
    }
    LAKEFED_ASSIGN_OR_RETURN(size_t pk_idx,
                             base->schema().ColumnIndex(cm.pk_column));
    for (const rel::Row& row : base->rows()) {
      rdf::Term subject = SubjectFromValue(row[pk_idx], cm);
      store->Add(subject, rdf::Term::Iri(rdf::kRdfType),
                 rdf::Term::Iri(cm.class_iri));
      for (const PredicateMapping& pm : cm.predicates) {
        if (!pm.InBaseTable()) continue;
        LAKEFED_ASSIGN_OR_RETURN(size_t col,
                                 base->schema().ColumnIndex(pm.column));
        if (row[col].is_null()) continue;
        store->Add(subject, rdf::Term::Iri(pm.predicate),
                   TermFromValue(row[col], pm));
      }
    }
    // Multi-valued predicates from side tables.
    for (const PredicateMapping& pm : cm.predicates) {
      if (pm.InBaseTable()) continue;
      const rel::Table* link = db.catalog().GetTable(pm.link_table);
      if (link == nullptr) {
        return Status::NotFound("mapped link table '" + pm.link_table +
                                "' missing in database " + db.name());
      }
      LAKEFED_ASSIGN_OR_RETURN(size_t fk_idx,
                               link->schema().ColumnIndex(pm.link_fk));
      LAKEFED_ASSIGN_OR_RETURN(size_t val_idx,
                               link->schema().ColumnIndex(pm.column));
      for (const rel::Row& row : link->rows()) {
        if (row[fk_idx].is_null() || row[val_idx].is_null()) continue;
        store->Add(SubjectFromValue(row[fk_idx], cm),
                   rdf::Term::Iri(pm.predicate),
                   TermFromValue(row[val_idx], pm));
      }
    }
  }
  return Status::OK();
}

}  // namespace lakefed::mapping
