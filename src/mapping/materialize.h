// Materialization: dump a mapped relational database as RDF triples. Used
// to build the RDF variant of a dataset (the LSLOD data exists in both
// models) and to cross-validate wrappers against the reference evaluator.

#ifndef LAKEFED_MAPPING_MATERIALIZE_H_
#define LAKEFED_MAPPING_MATERIALIZE_H_

#include "common/status.h"
#include "mapping/relational_mapping.h"
#include "rdf/triple_store.h"
#include "rel/database.h"

namespace lakefed::mapping {

// Emits, for every row of every mapped class: the rdf:type triple, one
// triple per non-NULL base-table predicate, and one triple per link-table
// row for multi-valued predicates.
Status MaterializeTriples(const rel::Database& db,
                          const SourceMapping& mapping,
                          rdf::TripleStore* store);

}  // namespace lakefed::mapping

#endif  // LAKEFED_MAPPING_MATERIALIZE_H_
