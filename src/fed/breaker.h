// Per-source circuit breakers: the engine-level memory of which Data Lake
// sources are known-down. Each source has a classic three-state breaker:
//
//   closed    — healthy; requests flow, consecutive failures are counted.
//   open      — `failure_threshold` consecutive failures tripped it; all
//               requests are rejected for `open_cooldown_ms`, so sessions
//               stop hammering a dead endpoint and the planner can route
//               around it.
//   half-open — the cooldown elapsed; exactly one probe request is let
//               through. Success closes the breaker, failure re-opens it.
//
// One BreakerRegistry lives in the FederatedEngine and is shared by every
// session (PlanOptions::breakers); all methods are thread-safe. Fault-free
// workloads never trip a breaker, so default behaviour is unchanged.

#ifndef LAKEFED_FED_BREAKER_H_
#define LAKEFED_FED_BREAKER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace lakefed::fed {

struct BreakerConfig {
  // Consecutive failures that open a source's breaker.
  int failure_threshold = 5;
  // How long an open breaker rejects requests before letting a probe
  // through (half-open).
  double open_cooldown_ms = 1000.0;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string BreakerStateToString(BreakerState state);

class BreakerRegistry {
 public:
  using Clock = std::chrono::steady_clock;

  explicit BreakerRegistry(BreakerConfig config = {}) : config_(config) {}

  // May a request be sent to `source_id` now? Open breakers reject until
  // the cooldown elapses; the first caller after that becomes the probe
  // (half-open) and the next AllowRequest holds further traffic until the
  // probe reports back.
  bool AllowRequest(const std::string& source_id);

  // Reports the outcome of a request (or probe) against `source_id`.
  void OnSuccess(const std::string& source_id);
  void OnFailure(const std::string& source_id);

  // The request was abandoned without an outcome — a hedge race loser
  // cancelled mid-flight. Releases the half-open probe slot the request may
  // hold (so the breaker cannot wedge waiting for a report that never
  // comes) without counting a success or failure: a cancelled attempt says
  // nothing about the source's health.
  void OnAbandoned(const std::string& source_id);

  BreakerState state(const std::string& source_id) const;

  // True when the source's breaker is open (or holding for an in-flight
  // probe). Display/diagnostics.
  bool IsOpen(const std::string& source_id) const;

  // True while requests to the source would be rejected outright: open and
  // still inside the cooldown window. The planner routes around such
  // sources; once the cooldown elapses the source re-enters plans so a
  // probe can close the breaker again. Does not consume the probe slot.
  bool ShouldAvoid(const std::string& source_id) const;

  // Snapshot of every tracked source (sources that never failed and were
  // never asked about are absent). For shell/stats display.
  struct Entry {
    std::string source_id;
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    uint64_t total_failures = 0;
    uint64_t rejected_requests = 0;
    // State transitions over the breaker's lifetime (metrics snapshot).
    uint64_t times_opened = 0;
    uint64_t times_half_open = 0;
    uint64_t times_closed = 0;
  };
  std::vector<Entry> Snapshot() const;

  // Closes every breaker and forgets all counts (tests; shell `.faults
  // clear` resets the world).
  void Reset();

  // Monotonic count of breaker state transitions that change what the
  // planner would route around: every open / half-open / close edge and
  // Reset() bumps it. Plan-cache entries carry the value observed at
  // planning time and are invalidated when it moves, so a plan built while
  // a source was avoided (or available) cannot be replayed after the
  // breaker flips. Fault-free workloads never transition, so this stays 0.
  uint64_t routing_epoch() const {
    return routing_epoch_.load(std::memory_order_acquire);
  }

  const BreakerConfig& config() const { return config_; }

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    uint64_t total_failures = 0;
    uint64_t rejected_requests = 0;
    uint64_t times_opened = 0;
    uint64_t times_half_open = 0;
    uint64_t times_closed = 0;
    Clock::time_point opened_at{};
    bool probe_in_flight = false;
  };

  Breaker& Get(const std::string& source_id);
  void BumpRoutingEpoch() {
    routing_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  const BreakerConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, Breaker> breakers_;
  std::atomic<uint64_t> routing_epoch_{0};
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_BREAKER_H_
