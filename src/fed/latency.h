// Per-source latency statistics feeding the tail-latency defenses: every
// wrapper call's duration is recorded here (in addition to the session's
// `wrapper.<id>.call_ms` histogram), and the executor reads quantiles back
// to derive adaptive per-attempt timeouts (clamp(k * p99, floor, remaining
// deadline)) and hedge delays (p95 of the primary source).
//
// One LatencyTracker lives in the FederatedEngine and is shared by every
// session (PlanOptions::latency), so observations accumulate across queries
// — the Odyssey-style statistics-driven adaptation the paper's related work
// argues for. All methods are thread-safe. Observations use the same
// exponential-bucket obs::Histogram as the metrics registry, so quantiles
// agree with the `.metrics` rendering.

#ifndef LAKEFED_FED_LATENCY_H_
#define LAKEFED_FED_LATENCY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"

namespace lakefed::fed {

class LatencyTracker {
 public:
  LatencyTracker() = default;
  LatencyTracker(const LatencyTracker&) = delete;
  LatencyTracker& operator=(const LatencyTracker&) = delete;

  // Records one wrapper-call duration against `source_id`.
  void Record(const std::string& source_id, double call_ms);

  // One quantile of one source's observed call latency. `samples` lets the
  // caller apply a min-samples guard before trusting the value.
  struct Estimate {
    uint64_t samples = 0;
    double value_ms = 0;
  };
  Estimate Quantile(const std::string& source_id, double q) const;

  // Snapshot of every tracked source (shell `.timeouts`).
  struct Quantiles {
    uint64_t samples = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };
  std::map<std::string, Quantiles> Snapshot() const;

  // Forgets all observations (tests; shell `.faults clear` resets the
  // world).
  void Reset();

 private:
  // The mutex guards the map only; the histograms themselves are
  // thread-safe, so Record is lock-free once a source's histogram exists.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<obs::Histogram>> sources_;
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_LATENCY_H_
