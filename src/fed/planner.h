// The federated query planner: source selection over RDF-MTs, the paper's
// Heuristic 1 (pushing down joins) and Heuristic 2 (pushing up
// instantiations), and bushy join-tree construction over the sub-queries.

#ifndef LAKEFED_FED_PLANNER_H_
#define LAKEFED_FED_PLANNER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "fed/options.h"
#include "fed/plan.h"
#include "fed/wrapper.h"
#include "mapping/rdf_mt.h"
#include "sparql/ast.h"

namespace lakefed::fed {

// Builds the QEP for `query` against the registered sources.
// `wrappers` maps source id -> wrapper (borrowed).
Result<FederatedPlan> BuildPlan(
    const sparql::SelectQuery& query, const mapping::RdfMtCatalog& catalog,
    const std::map<std::string, SourceWrapper*>& wrappers,
    const PlanOptions& options);

// Exposed for tests: is variable `var` backed by an indexed attribute within
// `star` at `wrapper`'s source? (subject position -> subject key index;
// object position -> index on the column its predicate maps to).
bool VariableIsIndexed(const StarSubQuery& star, const std::string& var,
                       const SourceWrapper& wrapper);

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_PLANNER_H_
