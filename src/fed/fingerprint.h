// Normalized query fingerprints: the plan-cache identity of a query under
// one set of plan-shaping options.
//
// Two textual queries that differ only in prefix declarations, triple-
// pattern order or filter order normalize to the same fingerprint; literal
// constants are lifted out of the canonical template as positional
// parameters. The *full* cache key still includes the parameter values —
// Heuristic 2's selectivity reasoning and the cost model's histogram
// lookups depend on the concrete literals, so a plan built for one
// parameter binding must not be replayed for another — but the split keeps
// the normalization rules explicit and gives the shell's `.fingerprint`
// something meaningful to show.

#ifndef LAKEFED_FED_FINGERPRINT_H_
#define LAKEFED_FED_FINGERPRINT_H_

#include <string>
#include <vector>

#include "fed/options.h"
#include "sparql/ast.h"

namespace lakefed::fed {

struct QueryFingerprint {
  // Canonical template of the (branch) query: prefixes dropped (terms are
  // already IRI-expanded by the parser), triple patterns and filters sorted
  // by their canonical rendering, literal constants replaced by positional
  // $<k> placeholders.
  std::string canonical;
  // The lifted literals, in placeholder order ($1 = params[0], ...).
  std::vector<std::string> params;
  // Digest of the PlanOptions fields that shape the plan (mode, heuristic
  // toggles, decomposition, network identity, cost model, ...). Fields that
  // only affect *how* a plan executes (batch size, retries, metrics) are
  // deliberately absent so they do not fragment the cache.
  std::string options_digest;

  // The plan-cache key: canonical template + parameter values + options
  // digest.
  std::string CacheKey() const;

  // Multi-line human-readable rendering (shell `.fingerprint`).
  std::string ToText() const;
};

// Fingerprints one union-free (branch) query. Callers expand UNION blocks
// first and fingerprint each branch independently, mirroring how sessions
// plan them.
QueryFingerprint FingerprintQuery(const sparql::SelectQuery& query,
                                  const PlanOptions& options);

// The options digest alone (also part of FingerprintQuery's result).
std::string PlanShapeDigest(const PlanOptions& options);

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_FINGERPRINT_H_
