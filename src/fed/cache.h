// Two-level reuse layer for repeated federated traffic:
//
//  * PlanCache — bounded, sharded LRU from a normalized query fingerprint
//    (fed/fingerprint.h) to the planned QEP, plus a small text-index from
//    raw SPARQL to its parsed AST so repeats skip the parser too. Owned by
//    the FederatedEngine; consulted by sessions before BuildPlan.
//  * SubAnswerCache — bounded LRU from a leaf sub-query's stats key (+
//    source data version) to its full result rows. Consulted by the
//    executor before dispatching a wrapper: hits replay the rows straight
//    into the dataflow, bypassing the wrapper call and its DelayChannel.
//
// Invalidation is epoch-based, never TTL-based (Odyssey's statistics-driven
// replanning motivates this): every entry is stamped with the epochs of
// everything its construction consulted — the cache's own structural epoch
// (bumped by AnalyzeSources), the StatsCatalog epoch (bumped by significant
// runtime-feedback folds) and the BreakerRegistry routing epoch (bumped by
// breaker state transitions). A lookup whose current stamp differs from the
// entry's drops the entry and reports a miss, so stale plans and answers
// die lazily, exactly when they would first be reused.
//
// Multi-tenant fairness: entries carry the inserting scope (the query
// service passes the tenant id) and scopes can be given byte quotas — a
// scope over its quota evicts its *own* least-recently-used entries first,
// so one tenant's churn cannot flush everyone else's cache.
//
// Thread-safety: all public methods are safe for concurrent sessions.

#ifndef LAKEFED_FED_CACHE_H_
#define LAKEFED_FED_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "fed/plan.h"
#include "rdf/bgp.h"
#include "sparql/ast.h"

namespace lakefed::fed {

// Validity stamp of a cached artifact: the epochs of everything consulted
// while producing it. Compared wholesale — any moved epoch invalidates.
struct EpochStamp {
  uint64_t structural = 0;  // cache's own epoch (AnalyzeSources)
  uint64_t stats = 0;       // StatsCatalog::epoch()
  uint64_t routing = 0;     // BreakerRegistry::routing_epoch()

  bool operator==(const EpochStamp& o) const {
    return structural == o.structural && stats == o.stats &&
           routing == o.routing;
  }
  bool operator!=(const EpochStamp& o) const { return !(*this == o); }
};

// Cumulative counters plus the current footprint of one cache.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;      // capacity or quota pressure
  uint64_t invalidations = 0;  // epoch-mismatch entries dropped at lookup
  uint64_t entries = 0;        // current
  uint64_t bytes = 0;          // current (approximate footprint)
};

namespace internal {

// Bounded, sharded LRU keyed by string, stamped with an EpochStamp, with
// per-scope byte accounting. Values hand out as shared_ptr so a hit stays
// valid after the entry is evicted underneath it.
template <typename V>
class ShardedLru {
 public:
  struct Limits {
    size_t shards = 8;
    size_t max_entries = 1024;         // across all shards
    uint64_t max_bytes = 64ull << 20;  // across all shards
  };

  explicit ShardedLru(Limits limits)
      : limits_(limits), shards_(std::max<size_t>(1, limits.shards)) {}

  ShardedLru(const ShardedLru&) = delete;
  ShardedLru& operator=(const ShardedLru&) = delete;

  void SetScopeQuota(const std::string& scope, uint64_t bytes) {
    std::lock_guard<std::mutex> lock(scope_mu_);
    scopes_[scope].quota = bytes;
  }

  std::shared_ptr<const V> Lookup(const std::string& key,
                                  const EpochStamp& stamp) {
    Shard& shard = ShardFor(key);
    std::shared_ptr<const V> value;
    std::string freed_scope;
    size_t freed = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.index.find(key);
      if (it == shard.index.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
      if (it->second->stamp != stamp) {
        // Stale: the world moved since this entry was built. Drop it so the
        // slot frees up; the caller rebuilds and re-inserts fresh.
        freed = it->second->bytes;
        freed_scope = it->second->scope;
        shard.bytes -= std::min<uint64_t>(shard.bytes, freed);
        shard.entries.erase(it->second);
        shard.index.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
      } else {
        shard.entries.splice(shard.entries.begin(), shard.entries,
                             it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        value = it->second->value;
      }
    }
    if (freed > 0) Debit(freed_scope, freed);
    return value;
  }

  void Insert(const std::string& key, const std::string& scope,
              std::shared_ptr<const V> value, const EpochStamp& stamp,
              size_t bytes) {
    Shard& shard = ShardFor(key);
    std::vector<std::pair<std::string, size_t>> debits;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        debits.emplace_back(it->second->scope, it->second->bytes);
        shard.bytes -= std::min<uint64_t>(shard.bytes, it->second->bytes);
        shard.entries.erase(it->second);
        shard.index.erase(it);
      }
      shard.entries.push_front(
          Node{key, scope, std::move(value), stamp, bytes});
      shard.index[key] = shard.entries.begin();
      shard.bytes += bytes;
      inserts_.fetch_add(1, std::memory_order_relaxed);
      // Per-shard share of the global bounds keeps capacity eviction local
      // (no cross-shard locking on the insert path).
      const size_t max_entries =
          std::max<size_t>(1, limits_.max_entries / shards_.size());
      const uint64_t max_bytes =
          std::max<uint64_t>(1, limits_.max_bytes / shards_.size());
      while (shard.index.size() > max_entries ||
             (shard.bytes > max_bytes && shard.index.size() > 1)) {
        EvictLruLocked(&shard, &debits);
      }
    }
    for (const auto& [s, b] : debits) Debit(s, b);
    Credit(scope, bytes);
    EnforceScopeQuota(scope);
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.entries.clear();
      shard.index.clear();
      shard.bytes = 0;
    }
    std::lock_guard<std::mutex> lock(scope_mu_);
    for (auto& [scope, acct] : scopes_) acct.bytes = 0;
  }

  CacheStats Stats() const {
    CacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.inserts = inserts_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.invalidations = invalidations_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      out.entries += shard.index.size();
      out.bytes += shard.bytes;
    }
    return out;
  }

  // Current bytes attributed to `scope` ("" = unscoped).
  uint64_t ScopeBytes(const std::string& scope) const {
    std::lock_guard<std::mutex> lock(scope_mu_);
    auto it = scopes_.find(scope);
    return it == scopes_.end() ? 0 : it->second.bytes;
  }

 private:
  struct Node {
    std::string key;
    std::string scope;
    std::shared_ptr<const V> value;
    EpochStamp stamp;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Node> entries;  // front = most recent
    std::map<std::string, typename std::list<Node>::iterator> index;
    uint64_t bytes = 0;  // guarded by mu
  };
  struct ScopeAccount {
    uint64_t bytes = 0;
    uint64_t quota = 0;  // 0 = unlimited
  };

  Shard& ShardFor(const std::string& key) {
    uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : key) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    return shards_[h % shards_.size()];
  }

  // Drops the shard's LRU entry into `debits`. Caller holds shard.mu and
  // settles the scope accounting after releasing it.
  void EvictLruLocked(Shard* shard,
                      std::vector<std::pair<std::string, size_t>>* debits) {
    if (shard->entries.empty()) return;
    Node& victim = shard->entries.back();
    shard->bytes -= std::min<uint64_t>(shard->bytes, victim.bytes);
    debits->emplace_back(victim.scope, victim.bytes);
    shard->index.erase(victim.key);
    shard->entries.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  void Credit(const std::string& scope, size_t bytes) {
    std::lock_guard<std::mutex> lock(scope_mu_);
    scopes_[scope].bytes += bytes;
  }

  void Debit(const std::string& scope, size_t bytes) {
    std::lock_guard<std::mutex> lock(scope_mu_);
    auto it = scopes_.find(scope);
    if (it == scopes_.end()) return;
    it->second.bytes -= std::min<uint64_t>(it->second.bytes, bytes);
  }

  // Evicts `scope`'s own least-recently-used entries until it fits its
  // quota again. Other scopes' entries are never touched here — that is
  // the whole point of per-tenant quotas.
  void EnforceScopeQuota(const std::string& scope) {
    uint64_t excess = 0;
    {
      std::lock_guard<std::mutex> lock(scope_mu_);
      auto it = scopes_.find(scope);
      if (it == scopes_.end() || it->second.quota == 0 ||
          it->second.bytes <= it->second.quota) {
        return;
      }
      excess = it->second.bytes - it->second.quota;
    }
    for (Shard& shard : shards_) {
      std::vector<std::pair<std::string, size_t>> debits;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.entries.end();
        while (it != shard.entries.begin() && excess > 0) {
          --it;
          if (it->scope != scope) continue;
          const size_t bytes = it->bytes;
          debits.emplace_back(it->scope, bytes);
          shard.bytes -= std::min<uint64_t>(shard.bytes, bytes);
          shard.index.erase(it->key);
          it = shard.entries.erase(it);
          evictions_.fetch_add(1, std::memory_order_relaxed);
          excess -= std::min<uint64_t>(excess, bytes);
        }
      }
      for (const auto& [s, b] : debits) Debit(s, b);
      if (excess == 0) return;
    }
  }

  const Limits limits_;
  std::vector<Shard> shards_;

  mutable std::mutex scope_mu_;
  std::map<std::string, ScopeAccount> scopes_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace internal

// (Config structs live at namespace scope: g++ cannot evaluate a default
// argument needing a nested aggregate's member initializers before the
// enclosing class is complete.)
struct PlanCacheConfig {
  size_t shards = 8;
  size_t max_entries = 256;
  uint64_t max_bytes = 64ull << 20;
  size_t max_parsed_entries = 512;
};

struct SubAnswerCacheConfig {
  size_t shards = 16;
  size_t max_entries = 4096;
  uint64_t max_bytes = 256ull << 20;
  // Sub-answers larger than this are not cached at all: one huge leaf
  // would evict the whole working set for a single reuse.
  uint64_t max_entry_bytes = 8ull << 20;
};

// Engine-owned cache of planned QEPs keyed by the query fingerprint's
// CacheKey(), plus a raw-text -> parsed-AST index so repeated sessions skip
// the parser. Entries are immutable shared plans; sessions keep the
// shared_ptr alive while their dataflow starts.
class PlanCache {
 public:
  using Config = PlanCacheConfig;

  explicit PlanCache(Config config = Config());

  // Structural generation: AnalyzeSources bumps it, invalidating every
  // cached plan and parsed query built against the previous statistics.
  uint64_t structural_epoch() const {
    return structural_epoch_.load(std::memory_order_acquire);
  }
  void BumpStructuralEpoch() {
    structural_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  std::shared_ptr<const FederatedPlan> Lookup(const std::string& key,
                                              const EpochStamp& stamp);
  void Insert(const std::string& key, const std::string& scope,
              std::shared_ptr<const FederatedPlan> plan,
              const EpochStamp& stamp);

  // Parsed-AST index. Parsing is pure, so entries are stamped only with the
  // structural epoch — a re-analyze also flushes stale ASTs, keeping one
  // invalidation story.
  std::shared_ptr<const sparql::SelectQuery> LookupParsed(
      const std::string& text);
  void InsertParsed(const std::string& text, sparql::SelectQuery query);

  void SetScopeQuota(const std::string& scope, uint64_t bytes);
  void Clear();

  CacheStats plan_stats() const { return plans_.Stats(); }
  CacheStats parsed_stats() const { return parsed_.Stats(); }

  // Plan bytes currently attributed to `scope` ("" = unscoped).
  uint64_t ScopeBytes(const std::string& scope) const {
    return plans_.ScopeBytes(scope);
  }

 private:
  std::atomic<uint64_t> structural_epoch_{0};
  internal::ShardedLru<FederatedPlan> plans_;
  internal::ShardedLru<sparql::SelectQuery> parsed_;
};

// Engine-owned cache of leaf sub-query results, keyed by the *fixed*
// SubQueryStatsKey (instantiation digest included) plus the source's data
// version. Hits replay the rows into the dataflow without a wrapper call.
class SubAnswerCache {
 public:
  using Config = SubAnswerCacheConfig;

  explicit SubAnswerCache(Config config = Config());

  uint64_t structural_epoch() const {
    return structural_epoch_.load(std::memory_order_acquire);
  }
  void BumpStructuralEpoch() {
    structural_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Composes the full cache key from a sub-query stats key and the
  // source's data version.
  static std::string Key(const std::string& stats_key,
                         uint64_t data_version) {
    return stats_key + "|v:" + std::to_string(data_version);
  }

  std::shared_ptr<const std::vector<rdf::Binding>> Lookup(
      const std::string& key, const EpochStamp& stamp);
  // Takes the rows by value (the executor hands over its staging copy).
  // Oversized answers are dropped silently.
  void Insert(const std::string& key, const std::string& scope,
              std::vector<rdf::Binding> rows, const EpochStamp& stamp);

  void SetScopeQuota(const std::string& scope, uint64_t bytes);
  void Clear();

  CacheStats stats() const { return answers_.Stats(); }

  // Sub-answer bytes currently attributed to `scope` ("" = unscoped).
  uint64_t ScopeBytes(const std::string& scope) const {
    return answers_.ScopeBytes(scope);
  }

  // Approximate in-memory footprint of a row set (shared by Insert and the
  // tests asserting quota behaviour).
  static size_t ApproxBytes(const std::vector<rdf::Binding>& rows);

 private:
  const Config config_;
  std::atomic<uint64_t> structural_epoch_{0};
  internal::ShardedLru<std::vector<rdf::Binding>> answers_;
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_CACHE_H_
