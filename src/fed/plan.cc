#include "fed/plan.h"

#include <set>

namespace lakefed::fed {
namespace {

void ExplainInto(const FedPlanNode& node, std::string* out, int indent) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append("-> ");
  out->append(node.Describe());
  if (node.estimated_rows >= 0.0) {
    out->append(" [est≈" +
                std::to_string(static_cast<long long>(node.estimated_rows)) +
                " rows]");
  }
  out->push_back('\n');
  for (const FedPlanPtr& child : node.children) {
    ExplainInto(*child, out, indent + 1);
  }
}

}  // namespace

std::vector<std::string> FedPlanNode::OutputVariables() const {
  switch (kind) {
    case Kind::kService:
      return subquery.Variables();
    case Kind::kProject:
      return projection;
    case Kind::kDependentJoin: {
      std::vector<std::string> out = children[0]->OutputVariables();
      std::set<std::string> seen(out.begin(), out.end());
      for (const std::string& v : subquery.Variables()) {
        if (seen.insert(v).second) out.push_back(v);
      }
      return out;
    }
    case Kind::kJoin:
    case Kind::kLeftJoin: {
      std::vector<std::string> out = children[0]->OutputVariables();
      std::set<std::string> seen(out.begin(), out.end());
      for (const std::string& v : children[1]->OutputVariables()) {
        if (seen.insert(v).second) out.push_back(v);
      }
      return out;
    }
    case Kind::kUnion:
    case Kind::kFilter:
    case Kind::kOrderBy:
    case Kind::kDistinct:
    case Kind::kLimit:
      return children[0]->OutputVariables();
  }
  return {};
}

std::string FedPlanNode::Describe() const {
  switch (kind) {
    case Kind::kService:
      return subquery.ToString();
    case Kind::kJoin: {
      std::string out = "SymmetricHashJoin on";
      for (const std::string& v : join_vars) out += " ?" + v;
      if (join_vars.empty()) out += " (cross product)";
      return out;
    }
    case Kind::kLeftJoin: {
      std::string out = "LeftJoin (OPTIONAL) on";
      for (const std::string& v : join_vars) out += " ?" + v;
      if (join_vars.empty()) out += " (unconditional)";
      return out;
    }
    case Kind::kDependentJoin: {
      std::string out = "DependentJoin on";
      for (const std::string& v : join_vars) out += " ?" + v;
      out += " into " + subquery.ToString();
      return out;
    }
    case Kind::kUnion:
      return "Union (" + std::to_string(children.size()) + " sources)";
    case Kind::kFilter: {
      std::string out = "EngineFilter";
      for (const sparql::FilterExprPtr& f : filters) {
        out += " " + f->ToString();
      }
      return out;
    }
    case Kind::kProject: {
      std::string out = "Project";
      for (const std::string& v : projection) out += " ?" + v;
      return out;
    }
    case Kind::kOrderBy: {
      std::string out = "OrderBy";
      for (const sparql::OrderCondition& c : order_by) {
        out += c.ascending ? " ?" + c.variable : " DESC(?" + c.variable + ")";
      }
      return out;
    }
    case Kind::kDistinct:
      return "Distinct";
    case Kind::kLimit:
      return "Limit " + std::to_string(limit);
  }
  return "?";
}

std::string FedPlanNode::Explain() const {
  std::string out;
  ExplainInto(*this, &out, 0);
  return out;
}

std::string FederatedPlan::Explain() const {
  std::string out;
  if (!decisions.empty()) {
    out += "Heuristic decisions:\n";
    for (const std::string& d : decisions) out += "  * " + d + "\n";
  }
  out += root->Explain();
  return out;
}

FedPlanPtr MakeServiceNode(SubQuery subquery) {
  auto node = std::make_unique<FedPlanNode>();
  node->kind = FedPlanNode::Kind::kService;
  node->subquery = std::move(subquery);
  return node;
}

FedPlanPtr MakeJoinNode(FedPlanPtr left, FedPlanPtr right,
                        std::vector<std::string> join_vars) {
  auto node = std::make_unique<FedPlanNode>();
  node->kind = FedPlanNode::Kind::kJoin;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  node->join_vars = std::move(join_vars);
  return node;
}

FedPlanPtr MakeLeftJoinNode(FedPlanPtr left, FedPlanPtr right,
                            std::vector<std::string> join_vars) {
  auto node = std::make_unique<FedPlanNode>();
  node->kind = FedPlanNode::Kind::kLeftJoin;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  node->join_vars = std::move(join_vars);
  return node;
}

FedPlanPtr MakeOrderByNode(FedPlanPtr child,
                           std::vector<sparql::OrderCondition> order_by) {
  auto node = std::make_unique<FedPlanNode>();
  node->kind = FedPlanNode::Kind::kOrderBy;
  node->children.push_back(std::move(child));
  node->order_by = std::move(order_by);
  return node;
}

FedPlanPtr MakeDependentJoinNode(FedPlanPtr left, SubQuery right,
                                 std::vector<std::string> join_vars) {
  auto node = std::make_unique<FedPlanNode>();
  node->kind = FedPlanNode::Kind::kDependentJoin;
  node->children.push_back(std::move(left));
  node->subquery = std::move(right);
  node->join_vars = std::move(join_vars);
  return node;
}

FedPlanPtr MakeUnionNode(std::vector<FedPlanPtr> children) {
  auto node = std::make_unique<FedPlanNode>();
  node->kind = FedPlanNode::Kind::kUnion;
  node->children = std::move(children);
  return node;
}

FedPlanPtr MakeFilterNode(FedPlanPtr child,
                          std::vector<sparql::FilterExprPtr> filters) {
  auto node = std::make_unique<FedPlanNode>();
  node->kind = FedPlanNode::Kind::kFilter;
  node->children.push_back(std::move(child));
  node->filters = std::move(filters);
  return node;
}

FedPlanPtr MakeProjectNode(FedPlanPtr child,
                           std::vector<std::string> projection) {
  auto node = std::make_unique<FedPlanNode>();
  node->kind = FedPlanNode::Kind::kProject;
  node->children.push_back(std::move(child));
  node->projection = std::move(projection);
  return node;
}

FedPlanPtr MakeDistinctNode(FedPlanPtr child) {
  auto node = std::make_unique<FedPlanNode>();
  node->kind = FedPlanNode::Kind::kDistinct;
  node->children.push_back(std::move(child));
  return node;
}

FedPlanPtr MakeLimitNode(FedPlanPtr child, int64_t limit) {
  auto node = std::make_unique<FedPlanNode>();
  node->kind = FedPlanNode::Kind::kLimit;
  node->children.push_back(std::move(child));
  node->limit = limit;
  return node;
}

}  // namespace lakefed::fed
