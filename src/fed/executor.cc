#include "fed/executor.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <iterator>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/blocking_queue.h"
#include "common/retry.h"
#include "common/stopwatch.h"
#include "fed/breaker.h"
#include "fed/cache.h"
#include "fed/latency.h"
#include "fed/subquery.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stats/stats_catalog.h"
#include "svc/scheduler.h"

namespace lakefed::fed {
namespace {

using RowQueue = BlockingQueue<rdf::Binding>;
using RowQueuePtr = std::shared_ptr<RowQueue>;

constexpr size_t kQueueCapacity = 4096;
constexpr size_t kDependentJoinBatch = 64;

// Serialized join key of a binding over `vars`. Empty vars = single bucket
// (cross product).
std::string JoinKey(const rdf::Binding& row,
                    const std::vector<std::string>& vars) {
  std::string key;
  for (const std::string& v : vars) {
    auto it = row.find(v);
    if (it == row.end()) return std::string();  // unmatched sentinel below
    key += it->second.ToString();
    key.push_back('\x01');
  }
  return key;
}

bool HasAllVars(const rdf::Binding& row,
                const std::vector<std::string>& vars) {
  for (const std::string& v : vars) {
    if (row.count(v) == 0) return false;
  }
  return true;
}

// Merges two compatible bindings (equal on shared variables by key
// construction).
rdf::Binding MergeBindings(const rdf::Binding& a, const rdf::Binding& b) {
  rdf::Binding out = a;
  out.insert(b.begin(), b.end());
  return out;
}

// Per-operator runtime recorder: attached as the wait observer of the
// operator's output queue (so push waits = backpressure on this operator,
// pop waits = consumer starvation for its output) and fed the operator
// thread's wall time. Lock-free — callbacks fire from producer and consumer
// threads concurrently. Also mirrors every wait into the execution-wide
// queue-wait histograms when those are attached.
class OpRuntimeRec : public QueueWaitObserver {
 public:
  OpRuntimeRec(obs::Histogram* push_wait_hist, obs::Histogram* pop_wait_hist)
      : push_wait_hist_(push_wait_hist), pop_wait_hist_(pop_wait_hist) {}

  void OnPushWait(double wait_ms) override {
    push_waits_.fetch_add(1, std::memory_order_relaxed);
    push_wait_us_.fetch_add(ToUs(wait_ms), std::memory_order_relaxed);
    if (push_wait_hist_ != nullptr) push_wait_hist_->Record(wait_ms);
  }

  void OnPopWait(double wait_ms) override {
    pop_waits_.fetch_add(1, std::memory_order_relaxed);
    pop_wait_us_.fetch_add(ToUs(wait_ms), std::memory_order_relaxed);
    if (pop_wait_hist_ != nullptr) pop_wait_hist_->Record(wait_ms);
  }

  void OnDepth(size_t depth) override {
    const uint64_t d = static_cast<uint64_t>(depth);
    depth_samples_.fetch_add(1, std::memory_order_relaxed);
    depth_sum_.fetch_add(d, std::memory_order_relaxed);
    uint64_t cur = peak_depth_.load(std::memory_order_relaxed);
    while (d > cur && !peak_depth_.compare_exchange_weak(
                          cur, d, std::memory_order_relaxed)) {
    }
  }

  // Operator-thread wall time. Concurrent producers of one queue (UNION
  // arms) keep the maximum — the arm that finished last bounds the
  // operator's elapsed time.
  void RecordWall(double wall_ms) {
    const uint64_t us = ToUs(wall_ms);
    uint64_t cur = wall_us_.load(std::memory_order_relaxed);
    while (us > cur && !wall_us_.compare_exchange_weak(
                           cur, us, std::memory_order_relaxed)) {
    }
    measured_.store(true, std::memory_order_relaxed);
  }

  // Call after every dataflow thread has joined.
  obs::OperatorRuntime Snapshot(std::string source_id) const {
    obs::OperatorRuntime rt;
    rt.source_id = std::move(source_id);
    rt.wall_ms = measured_.load(std::memory_order_relaxed)
                     ? static_cast<double>(
                           wall_us_.load(std::memory_order_relaxed)) /
                           1e3
                     : -1;
    rt.push_waits = push_waits_.load(std::memory_order_relaxed);
    rt.push_wait_ms =
        static_cast<double>(push_wait_us_.load(std::memory_order_relaxed)) /
        1e3;
    rt.pop_waits = pop_waits_.load(std::memory_order_relaxed);
    rt.pop_wait_ms =
        static_cast<double>(pop_wait_us_.load(std::memory_order_relaxed)) /
        1e3;
    rt.depth_samples = depth_samples_.load(std::memory_order_relaxed);
    rt.peak_depth = peak_depth_.load(std::memory_order_relaxed);
    rt.depth_sum =
        static_cast<double>(depth_sum_.load(std::memory_order_relaxed));
    return rt;
  }

 private:
  // Durations accumulate as integer microseconds so fetch_add stays a plain
  // atomic RMW (no double CAS loop on the hot path).
  static uint64_t ToUs(double ms) {
    return ms <= 0 ? 0 : static_cast<uint64_t>(ms * 1e3);
  }

  obs::Histogram* push_wait_hist_;
  obs::Histogram* pop_wait_hist_;
  std::atomic<uint64_t> push_waits_{0};
  std::atomic<uint64_t> push_wait_us_{0};
  std::atomic<uint64_t> pop_waits_{0};
  std::atomic<uint64_t> pop_wait_us_{0};
  std::atomic<uint64_t> depth_samples_{0};
  std::atomic<uint64_t> depth_sum_{0};
  std::atomic<uint64_t> peak_depth_{0};
  std::atomic<uint64_t> wall_us_{0};
  std::atomic<bool> measured_{false};
};

// Accumulates an operator's output rows and pushes them as morsels: one
// PushBatch per `batch_size` rows in steady state. Operators call Flush()
// after every consumed input batch, so batching never withholds rows that
// are ready — output granularity tracks input granularity and the stream
// keeps the row-at-a-time latency profile. batch_size 1 degenerates to a
// push per row (the legacy exchange, selectable for A/B runs).
template <typename T>
class BatchWriter {
 public:
  BatchWriter(BlockingQueue<T>* out, size_t batch_size,
              const CancellationToken& token)
      : out_(out), cap_(std::max<size_t>(1, batch_size)), token_(token) {}

  // Returns false when the downstream is gone (closed or cancelled) —
  // the operator must stop producing.
  bool Add(T row) {
    if (!open_) return false;
    buffer_.push_back(std::move(row));
    if (buffer_.size() >= cap_) open_ = out_->PushBatch(&buffer_, token_);
    return open_;
  }

  // Ships whatever has accumulated (partial-batch flush).
  bool Flush() {
    if (open_ && !buffer_.empty()) open_ = out_->PushBatch(&buffer_, token_);
    return open_;
  }

 private:
  BlockingQueue<T>* out_;
  const size_t cap_;
  CancellationToken token_;
  std::vector<T> buffer_;
  bool open_ = true;
};

// RAII wall-time probe for an operator thread: records elapsed time into
// the recorder at scope exit (null recorder = metrics off, no clock reads).
class WallTimer {
 public:
  explicit WallTimer(std::shared_ptr<OpRuntimeRec> rec)
      : rec_(std::move(rec)) {}
  ~WallTimer() {
    if (rec_ != nullptr) rec_->RecordWall(watch_.ElapsedMillis());
  }
  WallTimer(const WallTimer&) = delete;
  WallTimer& operator=(const WallTimer&) = delete;

 private:
  std::shared_ptr<OpRuntimeRec> rec_;
  Stopwatch watch_;
};

// ======================================================================
// Cooperative task dataflow (engaged by PlanOptions::scheduler).
//
// Every operator below has two equivalent implementations: the historic
// thread body (StartXxx) and a resumable task (StartXxxTasks) that runs on
// the shared svc::Scheduler worker pool. A task's Step() does a bounded
// slice of work — pop up to a few input morsels, compute, push — and parks
// on BlockingQueue readiness events instead of blocking a thread. Leaf
// wrapper calls and dependent-join probes, which sleep on the simulated
// network, run as one-shot jobs on the scheduler's auxiliary I/O pool.
// The answer multiset is identical on both substrates; only "who blocks"
// changes.

// Tag-merged join input (side 0 = left, 1 = right) for the task dataflow;
// the thread dataflow keeps its local equivalent.
struct TaggedRow {
  int side;
  rdf::Binding row;
};

// Counts an execution's outstanding tasks and I/O jobs so Finish() can
// wait for all of them — the task-mode analogue of joining the operator
// threads.
class TaskGroup {
 public:
  void Add() {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--outstanding_ == 0) cv_.notify_all();
  }
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t outstanding_ = 0;
};

// Never-blocking counterpart of BatchWriter: output rows accumulate in an
// overflow buffer and move into the queue opportunistically, so a task can
// always finish its Step and report kBlocked instead of stalling a worker
// on a full queue. Position-based (TryPushBatch) so a partially shipped
// buffer costs no erases.
template <typename T>
class TaskWriter {
 public:
  enum class State {
    kOk,      // buffer fully shipped
    kFull,    // downstream full — retry after a writable event
    kClosed,  // downstream gone — the producer must stop
  };

  TaskWriter(BlockingQueue<T>* out, size_t batch_size)
      : out_(out), cap_(std::max<size_t>(1, batch_size)) {}

  // Appends one output row, shipping eagerly at morsel granularity. Rows
  // added after the downstream closed are dropped (same contract as
  // BatchWriter::Add returning false).
  void Add(T row) {
    if (closed_) return;
    buffer_.push_back(std::move(row));
    if (buffer_.size() - pos_ >= cap_) TryFlush();
  }

  State TryFlush() {
    if (closed_) return State::kClosed;
    if (pos_ >= buffer_.size()) {
      Reset();
      return State::kOk;
    }
    if (!out_->TryPushBatch(&buffer_, &pos_)) {
      closed_ = true;
      Reset();
      return State::kClosed;
    }
    if (pos_ >= buffer_.size()) {
      Reset();
      return State::kOk;
    }
    return State::kFull;
  }

 private:
  void Reset() {
    buffer_.clear();
    pos_ = 0;
  }

  BlockingQueue<T>* out_;
  const size_t cap_;
  std::vector<T> buffer_;
  size_t pos_ = 0;    // buffer elements [0, pos_) are already in the queue
  bool closed_ = false;
};

// Input morsels consumed per Step before yielding: large enough to amortize
// the scheduling overhead, small enough to keep many concurrent queries
// interleaving fairly on a few workers.
constexpr int kTaskSlicesPerStep = 4;

// What a parked task is waiting for; determines how the park->resume time
// is attributed when it wakes (pop wait on its input, push wait on its
// output, or nothing for I/O — network time is measured by DelayChannel).
enum class BlockOn { kNone, kInput, kOutput, kIo };

// Base of every operator task: owns the operator span and the wall clock
// (construction -> completion — the task analogue of the operator thread's
// lifetime), counts itself in the execution's TaskGroup, and reports block
// durations to the waited-on queue's observer so EXPLAIN ANALYZE wait
// attribution is identical across both dataflows.
class OpTaskBase : public svc::Task {
 public:
  OpTaskBase(std::shared_ptr<TaskGroup> group,
             std::shared_ptr<OpRuntimeRec> wall_rec, obs::Span span)
      : group_(std::move(group)),
        wall_rec_(std::move(wall_rec)),
        span_(std::move(span)) {
    group_->Add();
  }

  svc::TaskResult Step() final {
    if (blocked_on_ != BlockOn::kNone) AttributeBlock();
    svc::TaskResult r = RunStep();
    if (r == svc::TaskResult::kDone && !completed_) {
      completed_ = true;
      if (wall_rec_ != nullptr) wall_rec_->RecordWall(wall_.ElapsedMillis());
      span_.End();
      group_->Done();
    }
    return r;
  }

 protected:
  virtual svc::TaskResult RunStep() = 0;

  // Parks the task. `obs` is the waited-on queue's observer (null = no
  // metrics, or an I/O wait): it receives the park->resume duration on the
  // next Step, including waits ended by close/cancel — the same accounting
  // the blocking queue applies to its terminal waits.
  svc::TaskResult Block(BlockOn on, QueueWaitObserver* obs) {
    blocked_on_ = on;
    block_obs_ = obs;
    if (obs != nullptr) block_watch_.Restart();
    return svc::TaskResult::kBlocked;
  }

 private:
  void AttributeBlock() {
    if (block_obs_ != nullptr) {
      const double ms = block_watch_.ElapsedMillis();
      if (blocked_on_ == BlockOn::kInput) {
        block_obs_->OnPopWait(ms);
      } else if (blocked_on_ == BlockOn::kOutput) {
        block_obs_->OnPushWait(ms);
      }
    }
    blocked_on_ = BlockOn::kNone;
    block_obs_ = nullptr;
  }

  std::shared_ptr<TaskGroup> group_;
  std::shared_ptr<OpRuntimeRec> wall_rec_;
  obs::Span span_;
  Stopwatch wall_;
  Stopwatch block_watch_;
  BlockOn blocked_on_ = BlockOn::kNone;
  QueueWaitObserver* block_obs_ = nullptr;
  bool completed_ = false;
};

// Generic streaming operator task: pop a morsel, fold it into the output
// writer, repeat. Covers every one-input operator (filter, project,
// distinct, limit, order-by, union arms, the join's forward legs and the
// join itself) through three hooks.
template <typename In, typename Out>
class RelayTask final : public OpTaskBase {
 public:
  using Writer = TaskWriter<Out>;
  // Folds one popped input morsel into the writer. Returning false stops
  // consuming input early (LIMIT satisfied) — treated like exhaustion.
  using ProcessFn = std::function<bool(std::vector<In>&&, Writer*)>;
  // Runs once when the input is exhausted, before the final flush
  // (ORDER BY emits its sorted buffer here). May be null.
  using FinalizeFn = std::function<void(Writer*)>;
  // Runs exactly once at completion: close inputs/outputs, decrement arm
  // countdowns. May be null.
  using DoneFn = std::function<void()>;

  RelayTask(std::shared_ptr<TaskGroup> group,
            std::shared_ptr<OpRuntimeRec> wall_rec, obs::Span span,
            std::shared_ptr<BlockingQueue<In>> in,
            std::shared_ptr<BlockingQueue<Out>> out, size_t batch,
            CancellationToken token, ProcessFn process, FinalizeFn finalize,
            DoneFn done)
      : OpTaskBase(std::move(group), std::move(wall_rec), std::move(span)),
        in_(std::move(in)),
        out_(std::move(out)),
        writer_(out_.get(), batch),
        batch_(batch),
        token_(std::move(token)),
        process_(std::move(process)),
        finalize_(std::move(finalize)),
        done_(std::move(done)) {}

 protected:
  svc::TaskResult RunStep() override {
    switch (writer_.TryFlush()) {
      case WriterState::kClosed: return Complete();
      case WriterState::kFull:
        return Block(BlockOn::kOutput, out_->wait_observer());
      case WriterState::kOk: break;
    }
    if (draining_) return Complete();
    for (int slice = 0; slice < kTaskSlicesPerStep; ++slice) {
      // A cancelled pop must not drain residual rows — mirror the
      // token-aware PopBatch, which returns 0 the moment the token fires.
      if (token_.IsCancelled()) return Complete();
      bool exhausted = false;
      const size_t n = in_->TryPopBatch(&in_batch_, batch_, &exhausted);
      bool stop = false;
      if (n == 0) {
        if (!exhausted) return Block(BlockOn::kInput, in_->wait_observer());
        stop = true;
      } else {
        stop = !process_(std::move(in_batch_), &writer_);
      }
      if (stop) {
        if (finalize_ != nullptr) finalize_(&writer_);
        draining_ = true;
        switch (writer_.TryFlush()) {
          case WriterState::kFull:
            return Block(BlockOn::kOutput, out_->wait_observer());
          default: return Complete();
        }
      }
      switch (writer_.TryFlush()) {
        case WriterState::kClosed: return Complete();
        case WriterState::kFull:
          return Block(BlockOn::kOutput, out_->wait_observer());
        case WriterState::kOk: break;
      }
    }
    return svc::TaskResult::kYield;
  }

 private:
  using WriterState = typename TaskWriter<Out>::State;

  svc::TaskResult Complete() {
    if (done_ != nullptr) {
      done_();
      done_ = nullptr;
    }
    return svc::TaskResult::kDone;
  }

  std::shared_ptr<BlockingQueue<In>> in_;
  std::shared_ptr<BlockingQueue<Out>> out_;
  TaskWriter<Out> writer_;
  const size_t batch_;
  CancellationToken token_;
  ProcessFn process_;
  FinalizeFn finalize_;
  DoneFn done_;
  std::vector<In> in_batch_;
  bool draining_ = false;  // input done; only the writer remainder is left
};

// OPTIONAL as a task: phase one materializes the right (optional) side into
// a hash table, phase two streams the left side through it. Readable events
// from either input wake the task; the phase decides which queue it reads.
class LeftJoinTask final : public OpTaskBase {
 public:
  LeftJoinTask(std::shared_ptr<TaskGroup> group,
               std::shared_ptr<OpRuntimeRec> wall_rec, obs::Span span,
               RowQueuePtr left, RowQueuePtr right, RowQueuePtr out,
               size_t batch, CancellationToken token,
               std::vector<std::string> join_vars, std::function<void()> done)
      : OpTaskBase(std::move(group), std::move(wall_rec), std::move(span)),
        left_(std::move(left)),
        right_(std::move(right)),
        out_(std::move(out)),
        writer_(out_.get(), batch),
        batch_(batch),
        token_(std::move(token)),
        join_vars_(std::move(join_vars)),
        done_(std::move(done)) {}

 protected:
  svc::TaskResult RunStep() override {
    switch (writer_.TryFlush()) {
      case WriterState::kClosed: return Complete();
      case WriterState::kFull:
        return Block(BlockOn::kOutput, out_->wait_observer());
      case WriterState::kOk: break;
    }
    if (draining_) return Complete();
    for (int slice = 0; slice < kTaskSlicesPerStep; ++slice) {
      if (token_.IsCancelled()) return Complete();
      if (building_) {
        bool exhausted = false;
        if (right_->TryPopBatch(&in_batch_, batch_, &exhausted) == 0) {
          if (!exhausted) {
            return Block(BlockOn::kInput, right_->wait_observer());
          }
          building_ = false;
          continue;
        }
        for (rdf::Binding& row : in_batch_) {
          if (!HasAllVars(row, join_vars_)) continue;
          table_[JoinKey(row, join_vars_)].push_back(std::move(row));
        }
        continue;
      }
      bool exhausted = false;
      if (left_->TryPopBatch(&in_batch_, batch_, &exhausted) == 0) {
        if (!exhausted) return Block(BlockOn::kInput, left_->wait_observer());
        draining_ = true;
        switch (writer_.TryFlush()) {
          case WriterState::kFull:
            return Block(BlockOn::kOutput, out_->wait_observer());
          default: return Complete();
        }
      }
      for (rdf::Binding& row : in_batch_) {
        auto it = HasAllVars(row, join_vars_)
                      ? table_.find(JoinKey(row, join_vars_))
                      : table_.end();
        if (it == table_.end() || it->second.empty()) {
          // No extension: keep the left row (left-outer semantics).
          writer_.Add(std::move(row));
          continue;
        }
        for (const rdf::Binding& extension : it->second) {
          writer_.Add(MergeBindings(row, extension));
        }
      }
      switch (writer_.TryFlush()) {
        case WriterState::kClosed: return Complete();
        case WriterState::kFull:
          return Block(BlockOn::kOutput, out_->wait_observer());
        case WriterState::kOk: break;
      }
    }
    return svc::TaskResult::kYield;
  }

 private:
  using WriterState = TaskWriter<rdf::Binding>::State;

  svc::TaskResult Complete() {
    if (done_ != nullptr) {
      done_();
      done_ = nullptr;
    }
    return svc::TaskResult::kDone;
  }

  RowQueuePtr left_;
  RowQueuePtr right_;
  RowQueuePtr out_;
  TaskWriter<rdf::Binding> writer_;
  const size_t batch_;
  CancellationToken token_;
  const std::vector<std::string> join_vars_;
  std::function<void()> done_;
  std::unordered_map<std::string, std::vector<rdf::Binding>> table_;
  std::vector<rdf::Binding> in_batch_;
  bool building_ = true;   // phase one: materializing the right side
  bool draining_ = false;  // all input consumed; writer remainder only
};

// Result cell of one dependent-join probe round trip, filled by an I/O-pool
// job while the task is parked on BlockOn::kIo. `ready` is written and read
// under `mu` — a mutex rather than an atomic flag, because the scheduler
// coalesces wakes: when the completion's Wake() lands on a task that is
// already queued for an unrelated event it is a no-op, and nothing would
// order the job's store before that run's load. The mutex totally orders
// the two critical sections, so a step that reads ready == false provably
// precedes the publication — the publisher's Wake() then finds the task
// running or parked and cannot be swallowed.
struct ProbeResult {
  std::vector<rdf::Binding> rows;
  bool failed = false;
  std::mutex mu;
  bool ready = false;  // guarded by mu
};

// Dependent (bind) join as a task: accumulates left rows into a probe
// window, hands the bound sub-query to the I/O pool, parks, and joins the
// probe window against the result when woken. The window ramp and probe
// partitioning replicate the thread implementation exactly, so even the
// answer order is preserved per probe.
class DependentJoinTask final : public OpTaskBase {
 public:
  using ProbeFn =
      std::function<void(SubQuery, std::shared_ptr<ProbeResult>)>;

  DependentJoinTask(std::shared_ptr<TaskGroup> group,
                    std::shared_ptr<OpRuntimeRec> wall_rec, obs::Span span,
                    RowQueuePtr left, RowQueuePtr out, size_t batch,
                    CancellationToken token,
                    std::vector<std::string> join_vars, SubQuery subquery,
                    std::function<void()> done)
      : OpTaskBase(std::move(group), std::move(wall_rec), std::move(span)),
        left_(std::move(left)),
        out_(std::move(out)),
        writer_(out_.get(), batch),
        batch_(batch),
        max_window_(std::max(batch, kDependentJoinBatch)),
        token_(std::move(token)),
        join_vars_(std::move(join_vars)),
        bind_var_(join_vars_.front()),
        subquery_(std::move(subquery)),
        done_(std::move(done)) {}

  // Installed after registration: the submit closure wakes the task through
  // its TaskRef, which does not exist at construction time.
  void set_probe_fn(ProbeFn fn) { probe_fn_ = std::move(fn); }

 protected:
  svc::TaskResult RunStep() override {
    switch (writer_.TryFlush()) {
      case WriterState::kClosed: return Complete();
      case WriterState::kFull:
        return Block(BlockOn::kOutput, out_->wait_observer());
      case WriterState::kOk: break;
    }
    if (draining_) return Complete();
    for (int slice = 0; slice < kTaskSlicesPerStep; ++slice) {
      if (awaiting_) {
        {
          std::lock_guard<std::mutex> lock(result_->mu);
          if (!result_->ready) {
            return Block(BlockOn::kIo, nullptr);  // spurious wake
          }
        }
        awaiting_ = false;
        if (result_->failed) return Complete();  // error already recorded
        JoinProbe();
        result_.reset();
        if (final_probe_) {
          draining_ = true;
          switch (writer_.TryFlush()) {
            case WriterState::kFull:
              return Block(BlockOn::kOutput, out_->wait_observer());
            default: return Complete();
          }
        }
        switch (writer_.TryFlush()) {
          case WriterState::kClosed: return Complete();
          case WriterState::kFull:
            return Block(BlockOn::kOutput, out_->wait_observer());
          case WriterState::kOk: break;
        }
        continue;
      }
      if (token_.IsCancelled()) return Complete();
      if (in_pos_ >= in_rows_.size()) {
        in_rows_.clear();
        in_pos_ = 0;
        bool exhausted = false;
        if (left_->TryPopBatch(&in_rows_, batch_, &exhausted) == 0) {
          if (!exhausted) {
            return Block(BlockOn::kInput, left_->wait_observer());
          }
          if (probe_.empty()) {
            draining_ = true;
            switch (writer_.TryFlush()) {
              case WriterState::kFull:
                return Block(BlockOn::kOutput, out_->wait_observer());
              default: return Complete();
            }
          }
          final_probe_ = true;
          return LaunchProbe();
        }
      }
      // Fill the probe window row by row, exactly like the thread loop, so
      // probe partitions (and thus per-probe output order) are identical.
      while (in_pos_ < in_rows_.size() && probe_.size() < window_) {
        probe_.push_back(std::move(in_rows_[in_pos_++]));
      }
      if (probe_.size() >= window_) return LaunchProbe();
    }
    return svc::TaskResult::kYield;
  }

 private:
  using WriterState = TaskWriter<rdf::Binding>::State;

  svc::TaskResult LaunchProbe() {
    // Distinct instantiation terms for the bound variable.
    std::vector<rdf::Term> terms;
    std::unordered_set<std::string> seen;
    for (const rdf::Binding& row : probe_) {
      auto it = row.find(bind_var_);
      if (it == row.end()) continue;
      if (seen.insert(it->second.ToString()).second) {
        terms.push_back(it->second);
      }
    }
    SubQuery bound = subquery_;
    bound.instantiations[bind_var_] = std::move(terms);
    result_ = std::make_shared<ProbeResult>();
    awaiting_ = true;
    probe_fn_(std::move(bound), result_);
    return Block(BlockOn::kIo, nullptr);
  }

  void JoinProbe() {
    std::unordered_map<std::string, std::vector<rdf::Binding>> right;
    for (rdf::Binding& row : result_->rows) {
      if (!HasAllVars(row, join_vars_)) continue;
      right[JoinKey(row, join_vars_)].push_back(std::move(row));
    }
    for (const rdf::Binding& lrow : probe_) {
      if (!HasAllVars(lrow, join_vars_)) continue;
      auto it = right.find(JoinKey(lrow, join_vars_));
      if (it == right.end()) continue;
      for (const rdf::Binding& rrow : it->second) {
        writer_.Add(MergeBindings(lrow, rrow));
      }
    }
    probe_.clear();
    window_ = std::min(window_ * 2, max_window_);
  }

  svc::TaskResult Complete() {
    probe_fn_ = nullptr;  // breaks the TaskRef cycle through the closure
    if (done_ != nullptr) {
      done_();
      done_ = nullptr;
    }
    return svc::TaskResult::kDone;
  }

  RowQueuePtr left_;
  RowQueuePtr out_;
  TaskWriter<rdf::Binding> writer_;
  const size_t batch_;
  size_t window_ = kDependentJoinBatch;
  const size_t max_window_;
  CancellationToken token_;
  const std::vector<std::string> join_vars_;
  const std::string bind_var_;
  const SubQuery subquery_;
  std::function<void()> done_;
  ProbeFn probe_fn_;
  std::vector<rdf::Binding> probe_;
  std::vector<rdf::Binding> in_rows_;
  size_t in_pos_ = 0;
  std::shared_ptr<ProbeResult> result_;
  bool awaiting_ = false;     // a probe is in flight on the I/O pool
  bool final_probe_ = false;  // input exhausted; this probe is the last
  bool draining_ = false;
};

}  // namespace

// Builds the thread/queue dataflow of one plan instance and exposes its
// root queue. Teardown is two-layered: the cancellation token closes every
// queue as soon as it fires (waking blocked threads), and Finish() closes
// them again defensively before joining, so abandoning a stream mid-way can
// never leave a producer blocked on a full queue.
class PlanExecution::Impl {
 public:
  Impl(const std::map<std::string, SourceWrapper*>& wrappers,
       const PlanOptions& options, CancellationToken token)
      : wrappers_(wrappers),
        options_(options),
        token_(std::move(token)),
        batch_(std::max<size_t>(1, options.batch_size)) {
    // Recovery accounting always goes through the local registry (it is
    // what ExecutionStats reads at Finish, and it must stay per-execution:
    // a UNION session runs several executions whose stats are reported
    // separately). Histograms and spans are recorded only when metrics
    // collection is on, and directly into the session's registry when one
    // is attached — skipping a snapshot+merge round trip per query.
    retries_counter_ = local_metrics_.GetCounter("exec.retries");
    failovers_counter_ = local_metrics_.GetCounter("exec.failovers");
    breaker_rejections_counter_ =
        local_metrics_.GetCounter("exec.breaker_rejections");
    // Tail-tolerance counters exist only when their feature is on, so the
    // default path's registry (and metrics JSON) is unchanged.
    if (options_.hedge.enabled) {
      hedges_fired_counter_ = local_metrics_.GetCounter("exec.hedges_fired");
      hedge_wins_counter_ = local_metrics_.GetCounter("exec.hedge_wins");
      hedges_cancelled_counter_ =
          local_metrics_.GetCounter("exec.hedges_cancelled");
      hedges_suppressed_counter_ =
          local_metrics_.GetCounter("exec.hedges_suppressed");
      hedge_budget_query_.store(options_.hedge.max_per_query,
                                std::memory_order_relaxed);
    }
    if (options_.adaptive_timeout.enabled) {
      adaptive_timeouts_counter_ =
          local_metrics_.GetCounter("exec.adaptive_timeouts");
    }
    if (options_.answer_cache && options_.answers != nullptr) {
      answer_hits_counter_ = local_metrics_.GetCounter("exec.subanswer_hits");
      answer_misses_counter_ =
          local_metrics_.GetCounter("exec.subanswer_misses");
      // The validity stamp every lookup and insert of this execution uses,
      // taken once, before any leaf runs: a concurrent epoch bump makes the
      // entries this execution writes look stale to later readers — never
      // the other way around.
      answer_stamp_.structural = options_.answers->structural_epoch();
      answer_stamp_.stats = options_.stats_catalog != nullptr
                                ? options_.stats_catalog->epoch()
                                : 0;
      answer_stamp_.routing = options_.breakers != nullptr
                                  ? options_.breakers->routing_epoch()
                                  : 0;
    }
    sink_ = options_.collect_metrics && options_.metrics != nullptr
                ? options_.metrics
                : &local_metrics_;
    if (options_.collect_metrics) spans_ = options_.spans;
    sched_ = options_.scheduler;
    if (sched_ != nullptr) task_group_ = std::make_shared<TaskGroup>();
  }

  ~Impl() { Finish(); }

  void Start(const FederatedPlan& plan) {
    exec_span_ = obs::Span(spans_, "execute", options_.parent_span);
    exec_span_id_ = exec_span_.id();
    root_ = sched_ != nullptr ? StartNodeTasks(*plan.root)
                              : StartNode(*plan.root);
    // Task mode defers every kick-off (initial wakes, leaf I/O submissions)
    // until the whole tree is wired: queue readiness listeners must be
    // frozen before the first producer can push.
    for (const std::function<void()>& start : deferred_starts_) start();
    deferred_starts_.clear();
  }

  bool NextBatch(RowBatch* batch) {
    // Rows the row-at-a-time shim already pulled are served first, so the
    // two pull forms interleave without loss or duplication.
    if (pending_pos_ < pending_.size()) {
      batch->rows.assign(
          std::make_move_iterator(pending_.rows.begin() +
                                  static_cast<ptrdiff_t>(pending_pos_)),
          std::make_move_iterator(pending_.rows.end()));
      pending_.clear();
      pending_pos_ = 0;
      return true;
    }
    batch->clear();
    if (root_ == nullptr || finished_) return false;
    return root_->PopBatch(&batch->rows, batch_, token_) > 0;
  }

  std::optional<rdf::Binding> Next() {
    if (pending_pos_ >= pending_.size()) {
      pending_.clear();
      pending_pos_ = 0;
      if (root_ == nullptr || finished_) return std::nullopt;
      if (root_->PopBatch(&pending_.rows, batch_, token_) == 0) {
        return std::nullopt;
      }
    }
    return std::move(pending_.rows[pending_pos_++]);
  }

  Status Finish() {
    if (finished_) return final_status_;
    CloseAllQueues();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    // Task mode: closing the queues woke every parked task; wait until all
    // tasks and I/O jobs of this execution ran to completion (the analogue
    // of joining the operator threads above).
    if (task_group_ != nullptr) task_group_->WaitIdle();
    {
      std::lock_guard<std::mutex> lock(mu_);
      final_status_ = error_.ok() ? token_.ToStatus() : error_;
    }
    for (const auto& [source, channel] : channels_) {
      stats_.messages_transferred += channel->messages_transferred();
      stats_.network_delay_ms += channel->total_delay_ms();
      ExecutionStats::SourceBreakdown& breakdown = stats_.per_source[source];
      breakdown.messages += channel->messages_transferred();
      breakdown.rows += channel->messages_transferred();
      breakdown.delay_ms += channel->total_delay_ms();
    }
    stats_.source_rows = stats_.messages_transferred;
    for (const auto& [source, injector] : injectors_) {
      stats_.faults_injected += injector->faults_injected();
      stats_.latency_spikes_injected += injector->slow_injected();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.failed_sources = failed_sources_;
      for (const AnswerTrace::Event& event : recovery_events_) {
        stats_.recovery_events.push_back(event.label);
      }
      stats_.partial = degraded_;
    }
    // Recovery counters live in the metrics registry (the single sink all
    // statistics channels feed); ExecutionStats is a projection of it.
    stats_.retries = retries_counter_->Value();
    stats_.failovers = failovers_counter_->Value();
    stats_.breaker_rejections = breaker_rejections_counter_->Value();
    if (hedges_fired_counter_ != nullptr) {
      stats_.hedges_fired = hedges_fired_counter_->Value();
      stats_.hedge_wins = hedge_wins_counter_->Value();
      stats_.hedges_cancelled = hedges_cancelled_counter_->Value();
      stats_.hedges_suppressed = hedges_suppressed_counter_->Value();
    }
    if (adaptive_timeouts_counter_ != nullptr) {
      stats_.adaptive_timeouts = adaptive_timeouts_counter_->Value();
    }
    if (answer_hits_counter_ != nullptr) {
      stats_.sub_answer_hits = answer_hits_counter_->Value();
      stats_.sub_answer_misses = answer_misses_counter_->Value();
    }
    constexpr const char* kRetriesSuffix = ".retries";
    for (const auto& [suffix, value] :
         local_metrics_.CountersWithPrefix("source.")) {
      if (suffix.size() > strlen(kRetriesSuffix) &&
          suffix.compare(suffix.size() - strlen(kRetriesSuffix),
                         strlen(kRetriesSuffix), kRetriesSuffix) == 0) {
        stats_.per_source[suffix.substr(
                              0, suffix.size() - strlen(kRetriesSuffix))]
            .retries += value;
      }
    }
    for (const auto& entry : operator_counters_) {
      operator_rows_.emplace_back(entry.label, entry.counter->load());
      operator_estimates_.push_back(entry.estimate);
      if (entry.runtime != nullptr) {
        operator_runtime_.push_back(entry.runtime->Snapshot(entry.source_id));
      } else {
        obs::OperatorRuntime rt;
        rt.source_id = entry.source_id;
        operator_runtime_.push_back(std::move(rt));
      }
      // Runtime cardinality feedback: fold the observed row count back into
      // the stats catalog, but only for clean completions — partial counts
      // of cancelled/expired runs would poison the estimates. Best-effort
      // runs that dropped a leaf (stats_.partial) leave final_status_ OK,
      // yet every surviving operator saw a truncated input; exclude them
      // for the same reason.
      if (options_.stats_catalog != nullptr && !entry.stats_key.empty() &&
          final_status_.ok() && !stats_.partial) {
        options_.stats_catalog->RecordActual(entry.stats_key,
                                             entry.counter->load());
      }
    }
    if (options_.collect_metrics) {
      sink_->GetCounter("exec.messages")
          ->Increment(stats_.messages_transferred);
      sink_->GetCounter("exec.source_rows")->Increment(stats_.source_rows);
      if (stats_.faults_injected > 0) {
        sink_->GetCounter("exec.faults_injected")
            ->Increment(stats_.faults_injected);
      }
      if (stats_.latency_spikes_injected > 0) {
        sink_->GetCounter("exec.latency_spikes")
            ->Increment(stats_.latency_spikes_injected);
      }
      for (const auto& [source, breakdown] : stats_.per_source) {
        sink_->GetCounter("source." + source + ".messages")
            ->Increment(breakdown.messages);
        sink_->GetCounter("source." + source + ".rows")
            ->Increment(breakdown.rows);
      }
      for (const auto& entry : operator_counters_) {
        sink_->GetCounter("op.rows." + entry.label)
            ->Increment(entry.counter->load());
      }
      if (sink_ != &local_metrics_) {
        // Hand the per-execution recovery counters over to the session's
        // registry: everything else was recorded there directly, so the
        // transfer is a handful of counter adds, not a snapshot+merge.
        for (const auto& [name, value] :
             local_metrics_.CountersWithPrefix("")) {
          if (value > 0) sink_->GetCounter(name)->Increment(value);
        }
      }
    }
    exec_span_.End();
    finished_ = true;
    return final_status_;
  }

  // The registry this execution recorded into: the session's, when one was
  // attached, else the execution-local fallback (standalone ExecutePlan).
  // Stable once Finish() ran.
  obs::MetricsSnapshot metrics_snapshot() const { return sink_->Snapshot(); }

  const ExecutionStats& stats() const { return stats_; }
  const std::vector<std::pair<std::string, uint64_t>>& operator_rows() const {
    return operator_rows_;
  }
  const std::vector<double>& operator_estimates() const {
    return operator_estimates_;
  }
  const std::vector<obs::OperatorRuntime>& operator_runtime() const {
    return operator_runtime_;
  }
  // Timestamped recovery events; valid after Finish() like the stats.
  const std::vector<AnswerTrace::Event>& trace_events() const {
    return recovery_events_;
  }

 private:
  // Registers a queue for teardown: closed when the token fires and again
  // by Finish(). The closures capture the shared_ptr, keeping the queue
  // alive for as long as the token may still invoke the callback.
  template <typename Q>
  void RegisterQueue(const std::shared_ptr<Q>& queue) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closers_.push_back([queue] { queue->Close(); });
    }
    token_.OnCancel([queue] { queue->Close(); });
  }

  void CloseAllQueues() {
    std::vector<std::function<void()>> closers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closers = closers_;
    }
    for (const std::function<void()>& close : closers) close();
  }

  net::DelayChannel* ChannelFor(const std::string& source_id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(source_id);
    if (it == channels_.end()) {
      uint64_t seed = options_.seed;
      for (char c : source_id) seed = seed * 131 + static_cast<uint64_t>(c);
      it = channels_
               .emplace(source_id, std::make_unique<net::DelayChannel>(
                                       options_.network, seed))
               .first;
      // Attach the source's fault injector, seeded independently of the
      // delay sampling so fault schedules do not perturb the delays.
      auto fault = options_.faults.find(source_id);
      if (fault != options_.faults.end() && fault->second.Active()) {
        auto injector = std::make_unique<net::FaultInjector>(
            source_id, fault->second, seed ^ UINT64_C(0x9e3779b97f4a7c15));
        it->second->set_fault_injector(injector.get());
        injectors_.emplace(source_id, std::move(injector));
      }
      if (options_.collect_metrics) {
        it->second->set_observer(
            sink_->GetHistogram("net." + source_id + ".transfer_ms"),
            spans_, exec_span_id_, "xfer:" + source_id);
      }
    }
    return it->second.get();
  }

  void RecordError(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (error_.ok()) error_ = status;
  }

  Result<SourceWrapper*> WrapperFor(const std::string& source_id) {
    auto it = wrappers_.find(source_id);
    if (it == wrappers_.end()) {
      return Status::NotFound("no wrapper registered for source '" +
                              source_id + "'");
    }
    return it->second;
  }

  // One instrumented wrapper call: a "wrapper:<source>" span under
  // `parent_span` plus a per-source call-latency histogram.
  Status WrapperCall(SourceWrapper* w, const SubQuery& subquery,
                     net::DelayChannel* channel, RowQueue* out,
                     const CancellationToken& token, uint64_t parent_span) {
    obs::Span span(spans_, "wrapper:" + subquery.source_id, parent_span);
    Stopwatch watch;
    WrapperContext ctx;
    ctx.channel = channel;
    ctx.out = out;
    ctx.token = token;
    ctx.batch_size = batch_;
    Status st = w->Execute(subquery, ctx);
    const double elapsed_ms = watch.ElapsedMillis();
    // Successful calls feed the shared latency tracker (adaptive timeouts
    // and hedge delays). Failed or cancelled calls are excluded: an aborted
    // attempt's short duration would drag the quantiles below what a
    // completed call actually costs. The explicit token check matters
    // because wrappers return OK when they stop early due to cancellation
    // (hedge losers, expired per-attempt timeouts) — a quiet OK must not
    // record a truncated duration.
    if (options_.latency != nullptr && st.ok() && !token.IsCancelled()) {
      options_.latency->Record(subquery.source_id, elapsed_ms);
    }
    if (options_.collect_metrics) {
      sink_->GetHistogram("wrapper." + subquery.source_id + ".call_ms")
          ->Record(elapsed_ms);
    }
    return st;
  }

  // --- sub-answer caching ----------------------------------------------
  // Every leaf execution (service scan or bind-join probe, both dataflow
  // substrates) routes through here. With caching off this is a plain tail
  // call into `direct(sink)` — the historic path, untouched. With caching
  // on, a hit replays the memoized rows into `sink` without a wrapper call
  // (no DelayChannel traffic, no latency sample); a miss runs `direct`
  // into a private staging queue and memoizes the rows only on a clean
  // completion — a failed recovery ladder, a cancelled session or an
  // expired deadline may have produced a prefix, and hedge losers never
  // reach this level (their rows die in the race's private queues).
  Status ExecuteLeafMaybeCached(
      const SubQuery& subquery, RowQueue* sink, const CancellationToken& token,
      uint64_t parent_span, const std::function<Status(RowQueue*)>& direct) {
    SubAnswerCache* cache = options_.answer_cache ? options_.answers : nullptr;
    if (cache == nullptr) return direct(sink);
    uint64_t version = 0;
    if (auto it = wrappers_.find(subquery.source_id); it != wrappers_.end()) {
      version = it->second->DataVersion();
    }
    const std::string key =
        SubAnswerCache::Key(SubQueryStatsKey(subquery), version);
    if (std::shared_ptr<const std::vector<rdf::Binding>> hit =
            cache->Lookup(key, answer_stamp_)) {
      if (answer_hits_counter_ != nullptr) answer_hits_counter_->Increment();
      obs::Span span(spans_, "subanswer-cache:" + subquery.source_id,
                     parent_span);
      std::vector<rdf::Binding> out;
      for (size_t i = 0; i < hit->size(); i += batch_) {
        const size_t n = std::min(batch_, hit->size() - i);
        out.assign(hit->begin() + static_cast<ptrdiff_t>(i),
                   hit->begin() + static_cast<ptrdiff_t>(i + n));
        if (!sink->PushBatch(&out, token)) break;
      }
      return Status::OK();
    }
    if (answer_misses_counter_ != nullptr) answer_misses_counter_->Increment();
    RowQueue staging(static_cast<size_t>(1) << 30);
    Status st = direct(&staging);
    staging.Close();
    std::vector<rdf::Binding> rows;
    {
      std::vector<rdf::Binding> drained;
      while (staging.PopBatch(&drained, batch_, token) > 0) {
        for (rdf::Binding& row : drained) rows.push_back(std::move(row));
      }
    }
    if (st.ok() && !token.IsCancelled()) {
      cache->Insert(key, options_.cache_scope, rows, answer_stamp_);
    }
    for (size_t i = 0; i < rows.size(); i += batch_) {
      const size_t n = std::min(batch_, rows.size() - i);
      std::vector<rdf::Binding> out(
          std::make_move_iterator(rows.begin() + static_cast<ptrdiff_t>(i)),
          std::make_move_iterator(rows.begin() +
                                  static_cast<ptrdiff_t>(i + n)));
      if (!sink->PushBatch(&out, token)) break;
    }
    return st;
  }

  // --- fault-tolerant leaf execution -----------------------------------
  // Engaged only when the options ask for it; otherwise leaves run on the
  // exact historic direct-streaming path, so default behaviour (including
  // error propagation and answer streaming granularity) is unchanged.
  bool FaultTolerant() const {
    return options_.retry.enabled() ||
           options_.failure_mode == FailureMode::kBestEffort ||
           !options_.faults.empty() || options_.hedge.enabled ||
           options_.adaptive_timeout.enabled;
  }

  void AddRecoveryEvent(std::string event) {
    std::lock_guard<std::mutex> lock(mu_);
    recovery_events_.push_back({clock_.ElapsedSeconds(), std::move(event)});
  }

  // One sub-query against one source under the retry policy. Every attempt
  // runs into a private staging queue and is forwarded to `sink` only on
  // success, so downstream operators never observe duplicate or torn
  // attempts. A closed `sink` (downstream satisfied) counts as success.
  // Per-attempt timeout for `source` derived from its observed latency:
  // multiplier × the configured quantile, floored, once enough samples
  // exist. Until then the static retry.attempt_timeout_ms applies. The
  // session's remaining deadline still caps every attempt (MakeAttemptToken
  // clamps), so an optimistic quantile can never extend a query past its
  // deadline.
  double AdaptiveAttemptTimeoutMs(const std::string& source) {
    const PlanOptions::AdaptiveTimeoutConfig& cfg = options_.adaptive_timeout;
    if (options_.latency != nullptr) {
      LatencyTracker::Estimate est =
          options_.latency->Quantile(source, cfg.quantile);
      if (est.samples >= cfg.min_samples) {
        adaptive_timeouts_counter_->Increment();
        return std::max(cfg.floor_ms, cfg.multiplier * est.value_ms);
      }
    }
    return options_.retry.attempt_timeout_ms;
  }

  Status ExecuteWithRetry(SourceWrapper* w, const SubQuery& subquery,
                          net::DelayChannel* channel, RowQueue* sink,
                          const CancellationToken& token, Rng* rng,
                          int* retries_out, uint64_t parent_span) {
    net::FaultInjector* injector = channel->fault_injector();
    std::function<double(int)> attempt_timeout_fn;
    if (options_.adaptive_timeout.enabled) {
      const std::string source = subquery.source_id;
      attempt_timeout_fn = [this, source](int) {
        return AdaptiveAttemptTimeoutMs(source);
      };
    }
    return RunWithRetry(
        options_.retry, token, rng,
        [&](const CancellationToken& attempt_token) -> Status {
          RowQueue staging(static_cast<size_t>(1) << 30);
          if (injector != nullptr) {
            LAKEFED_RETURN_NOT_OK(injector->OnConnect(attempt_token));
          }
          LAKEFED_RETURN_NOT_OK(WrapperCall(w, subquery, channel, &staging,
                                            attempt_token, parent_span));
          // Wrappers stop quietly when their token fires; surface the
          // attempt timeout here so the retry loop can tell a retryable
          // per-attempt expiry from a clean completion.
          if (attempt_token.IsCancelled()) return attempt_token.ToStatus();
          staging.Close();
          std::vector<rdf::Binding> drained;
          while (staging.PopBatch(&drained, batch_, token) > 0) {
            if (!sink->PushBatch(&drained, token)) break;
          }
          return Status::OK();
        },
        retries_out, attempt_timeout_fn);
  }

  // --- hedged leaf execution -------------------------------------------
  // When PlanOptions::hedge is on and the planner recorded a failover
  // alternate, a leaf runs as a race: the primary starts immediately; if it
  // is still running once the hedge delay passes (multiplier × the
  // primary's observed latency quantile, or the fallback delay while
  // samples are scarce), the same sub-query is launched speculatively
  // against the first alternate. The first racer to complete supplies the
  // rows; the loser is cancelled. Each racer stages its rows in a private
  // queue and only the winner's queue is drained into the real sink — by
  // the launcher thread alone — so downstream operators can never observe
  // torn or duplicate rows.

  // Shared outcome of one racer (primary or hedge).
  struct RacerResult {
    Status status = Status::OK();
    int retries = 0;
    // The circuit breaker admitted this racer (AllowRequest returned true),
    // so exactly one of OnSuccess/OnFailure/OnAbandoned must report back.
    bool admitted = false;
  };

  // Shared state of one hedge race. `mu` orders the launcher (running the
  // primary inline) against the watchdog (sleeping out the hedge delay,
  // then running the hedge arm). The session token's IsCancelled() is
  // never evaluated while holding `mu`: observing an expired deadline
  // promotes it to a cancellation that runs callbacks on the calling
  // thread, and those callbacks may need `mu` themselves.
  struct HedgeRace {
    std::mutex mu;
    std::condition_variable cv;
    bool primary_done = false;
    // Launcher resolved the race; the watchdog must not launch a hedge any
    // more (it may still be draining one it already launched).
    bool closed = false;
    bool hedge_launched = false;
    bool hedge_done = false;
    int winner = -1;  // first racer to finish OK: 0 = primary, 1 = hedge
    RacerResult primary, hedge;
    CancellationToken primary_token, hedge_token;
    std::shared_ptr<RowQueue> primary_rows, hedge_rows;
  };

  struct HedgeOutcome {
    bool decided = false;  // status is final — success or session abort
    size_t raced = 1;      // candidates consumed; the ladder resumes here
    Status status = Status::OK();
  };

  // A cancellable child of the session token: cancelling the child stops
  // one racer without touching the session; cancelling the session (or its
  // deadline expiring) propagates to the child. The deadline must be
  // copied, not just linked — expiry is promoted lazily by whoever observes
  // it, and a racer may be the only thread looking at a clock.
  static CancellationToken MakeLinkedToken(const CancellationToken& session) {
    std::optional<CancellationToken::Clock::time_point> deadline =
        session.deadline();
    CancellationToken child = deadline.has_value()
                                  ? CancellationToken::WithDeadline(*deadline)
                                  : CancellationToken::Cancellable();
    if (session.can_cancel()) {
      CancellationToken session_copy = session;
      CancellationToken child_copy = child;
      session_copy.OnCancel([child_copy, session_copy]() mutable {
        child_copy.CancelWith(session_copy.ToStatus());
      });
    }
    return child;
  }

  // Hedge delay for a leaf whose primary is `source`: multiplier × the
  // observed latency quantile once enough samples exist, else the static
  // fallback; never below the configured minimum.
  double HedgeDelayMs(const std::string& source) const {
    const PlanOptions::HedgeConfig& cfg = options_.hedge;
    double delay = cfg.fallback_delay_ms;
    if (options_.latency != nullptr) {
      LatencyTracker::Estimate est =
          options_.latency->Quantile(source, cfg.quantile);
      if (est.samples >= cfg.min_samples) {
        delay = cfg.multiplier * est.value_ms;
      }
    }
    return std::max(delay, cfg.min_delay_ms);
  }

  // Claims one unit of hedge budget (per query and per hedge source).
  // Returns false — charging nothing — when either budget is exhausted.
  bool ConsumeHedgeBudget(const std::string& hedge_source) {
    int cur = hedge_budget_query_.load(std::memory_order_relaxed);
    while (cur > 0 && !hedge_budget_query_.compare_exchange_weak(
                          cur, cur - 1, std::memory_order_relaxed)) {
    }
    if (cur <= 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    int& used = hedge_source_used_[hedge_source];
    if (used >= options_.hedge.max_per_source) {
      hedge_budget_query_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ++used;
    return true;
  }

  // Returns a claimed budget unit (the hedge lost the launch race and never
  // actually fired).
  void RefundHedgeBudget(const std::string& hedge_source) {
    hedge_budget_query_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    --hedge_source_used_[hedge_source];
  }

  // One arm of a hedge race: breaker admission, then the standard retried
  // execution into the racer's private staging queue.
  void RunRacer(const SubQuery& base, const std::string& source,
                RowQueue* staging, const CancellationToken& racer_token,
                Rng* rng, uint64_t parent_span, RacerResult* out) {
    BreakerRegistry* breakers = options_.breakers;
    if (breakers != nullptr && !breakers->AllowRequest(source)) {
      breaker_rejections_counter_->Increment();
      out->admitted = false;
      out->status = Status::Unavailable("circuit breaker open for source '" +
                                        source + "'");
      return;
    }
    out->admitted = breakers != nullptr;
    Result<SourceWrapper*> wrapper = WrapperFor(source);
    if (!wrapper.ok()) {
      out->status = wrapper.status();
      return;
    }
    SubQuery sq = base;
    sq.source_id = source;
    net::DelayChannel* channel = ChannelFor(source);
    out->status = ExecuteWithRetry(*wrapper, sq, channel, staging,
                                   racer_token, rng, &out->retries,
                                   parent_span);
  }

  // Reports one finished racer: retry accounting, then the breaker verdict.
  // A racer cancelled as the race loser (or by the session) neither closes
  // nor trips the breaker — it only releases the probe slot it may hold.
  void ResolveRacer(const std::string& source, const RacerResult& r) {
    if (r.retries > 0) {
      retries_counter_->Increment(static_cast<uint64_t>(r.retries));
      local_metrics_.GetCounter("source." + source + ".retries")
          ->Increment(static_cast<uint64_t>(r.retries));
      AddRecoveryEvent("retried " + source + " x" +
                       std::to_string(r.retries));
    }
    BreakerRegistry* breakers = options_.breakers;
    if (!r.admitted || breakers == nullptr) return;
    if (r.status.ok()) {
      breakers->OnSuccess(source);
    } else if (r.status.code() == StatusCode::kCancelled) {
      breakers->OnAbandoned(source);
    } else {
      breakers->OnFailure(source);
      if (breakers->IsOpen(source)) {
        AddRecoveryEvent("breaker opened for " + source);
      }
      std::lock_guard<std::mutex> lock(mu_);
      failed_sources_[source] = r.status.message();
    }
  }

  // Runs candidates[0] hedged by candidates[1]. Returns decided=true with
  // the final status when a racer won (its rows are in `sink`) or the
  // session aborted; otherwise both arms failed and the recovery ladder
  // resumes from index `raced`.
  HedgeOutcome ExecuteLeafHedged(const SubQuery& subquery,
                                 const std::vector<std::string>& candidates,
                                 RowQueue* sink,
                                 const CancellationToken& token, Rng* rng,
                                 uint64_t parent_span) {
    const std::string primary_source = candidates[0];
    const std::string hedge_source = candidates[1];
    const double delay_ms = HedgeDelayMs(primary_source);

    auto race = std::make_shared<HedgeRace>();
    race->primary_token = MakeLinkedToken(token);
    race->hedge_token = MakeLinkedToken(token);
    race->primary_rows = std::make_shared<RowQueue>(static_cast<size_t>(1)
                                                    << 30);
    race->hedge_rows = std::make_shared<RowQueue>(static_cast<size_t>(1)
                                                  << 30);

    // Hedge-arm retry RNG: derived like the per-leaf RNG but over the hedge
    // source and a distinct salt, so the two racers draw independent,
    // replayable backoff schedules.
    uint64_t hedge_seed = options_.seed ^ UINT64_C(0x51afd6ed558ccd25);
    for (char c : hedge_source) {
      hedge_seed = hedge_seed * 131 + static_cast<uint64_t>(c);
    }

    // The watchdog sleeps out the hedge delay; if the primary is still in
    // flight it runs the hedge arm itself (so the arm needs no third
    // thread). Budget is charged only when the hedge actually fires.
    auto watchdog = [this, race, subquery, hedge_source, hedge_seed,
                     delay_ms, parent_span] {
      {
        std::unique_lock<std::mutex> lock(race->mu);
        race->cv.wait_for(
            lock, std::chrono::duration<double, std::milli>(delay_ms),
            [&race] { return race->primary_done || race->closed; });
        if (race->primary_done || race->closed) return;
      }
      if (!ConsumeHedgeBudget(hedge_source)) {
        hedges_suppressed_counter_->Increment();
        return;
      }
      bool launch = false;
      {
        std::lock_guard<std::mutex> lock(race->mu);
        // The launcher may have resolved between our wake-up and here; a
        // hedge launched now would have no one to drain or resolve it.
        if (!race->closed) {
          race->hedge_launched = true;
          launch = true;
        }
      }
      if (!launch) {
        RefundHedgeBudget(hedge_source);
        return;
      }
      hedges_fired_counter_->Increment();
      AddRecoveryEvent("hedge fired " + subquery.source_id + " -> " +
                       hedge_source);
      Rng hedge_rng(hedge_seed);
      RunRacer(subquery, hedge_source, race->hedge_rows.get(),
               race->hedge_token, &hedge_rng, parent_span, &race->hedge);
      bool hedge_won = false;
      {
        std::lock_guard<std::mutex> lock(race->mu);
        race->hedge_done = true;
        if (race->hedge.status.ok() && race->winner == -1) {
          race->winner = 1;
          hedge_won = true;
        }
        race->cv.notify_all();
      }
      // Cancel outside the race mutex: CancelWith runs callbacks inline.
      if (hedge_won) {
        race->primary_token.CancelWith(
            Status::Cancelled("hedge against '" + hedge_source +
                              "' completed first"));
      }
    };

    std::thread watchdog_thread;  // thread mode only
    if (sched_ != nullptr) {
      // Scheduler mode: the watchdog is an I/O-pool job tracked by the
      // execution's task group (Finish waits for it). The launcher never
      // blocks on a job that has not started — if the pool is saturated the
      // job runs late, observes `closed` and exits without launching.
      std::shared_ptr<TaskGroup> group = task_group_;
      group->Add();
      sched_->SubmitIo([group, watchdog] {
        watchdog();
        group->Done();
      });
    } else {
      watchdog_thread = std::thread(watchdog);
    }

    // The primary racer runs inline on the leaf's own thread/job, with the
    // leaf's deterministic retry RNG — an unhedged leaf and a hedged leaf
    // whose hedge never fires replay identical primary schedules.
    RunRacer(subquery, primary_source, race->primary_rows.get(),
             race->primary_token, rng, parent_span, &race->primary);

    bool cancel_hedge = false;
    {
      std::lock_guard<std::mutex> lock(race->mu);
      race->primary_done = true;
      race->closed = true;
      if (race->primary.status.ok() && race->winner == -1) race->winner = 0;
      cancel_hedge =
          race->winner == 0 && race->hedge_launched && !race->hedge_done;
      race->cv.notify_all();
    }
    if (cancel_hedge) {
      race->hedge_token.CancelWith(Status::Cancelled(
          "primary '" + primary_source + "' completed first"));
    }
    // Quiesce the hedge arm: once `closed` is set the watchdog can no
    // longer launch, so waiting on hedge_done when hedge_launched is the
    // complete condition (and the hedge arm is already running then — this
    // never waits on an unscheduled job).
    {
      std::unique_lock<std::mutex> lock(race->mu);
      race->cv.wait(lock, [&race] {
        return !race->hedge_launched || race->hedge_done;
      });
    }
    if (watchdog_thread.joinable()) watchdog_thread.join();

    // Both arms are final; report them, then settle the outcome.
    ResolveRacer(primary_source, race->primary);
    if (race->hedge_launched) ResolveRacer(hedge_source, race->hedge);

    HedgeOutcome out;
    out.raced = race->hedge_launched ? 2 : 1;
    if (token.IsCancelled()) {
      out.decided = true;
      out.status = token.ToStatus();
      return out;
    }
    if (race->winner >= 0) {
      if (race->winner == 1) {
        hedge_wins_counter_->Increment();
        AddRecoveryEvent("hedge won " + subquery.source_id + " via " +
                         hedge_source);
      }
      const RacerResult& loser =
          race->winner == 0 ? race->hedge : race->primary;
      const bool loser_ran = race->winner == 0 ? race->hedge_launched : true;
      if (loser_ran && loser.status.code() == StatusCode::kCancelled) {
        hedges_cancelled_counter_->Increment();
      }
      // Forward the winner's rows — single-threaded, after both arms are
      // quiescent, so the sink sees exactly one complete attempt.
      RowQueue* rows = race->winner == 0 ? race->primary_rows.get()
                                         : race->hedge_rows.get();
      rows->Close();
      std::vector<rdf::Binding> drained;
      while (rows->PopBatch(&drained, batch_, token) > 0) {
        if (!sink->PushBatch(&drained, token)) break;
      }
      out.decided = true;
      out.status = Status::OK();
      return out;
    }
    // Both arms failed: hand the ladder the most recent real error.
    out.decided = false;
    out.status = race->hedge_launched &&
                         race->hedge.status.code() != StatusCode::kCancelled
                     ? race->hedge.status
                     : race->primary.status;
    return out;
  }

  // Runs one leaf sub-query with the full recovery ladder: retry against
  // its own source, then against each failover alternate (same molecule),
  // consulting the per-source circuit breakers throughout. When hedging is
  // enabled and an alternate exists, the first two candidates race (see
  // ExecuteLeafHedged); the ladder covers the remainder. Returns OK as
  // soon as any candidate completes; otherwise the last error.
  Status ExecuteLeafWithRecovery(const SubQuery& subquery,
                                 const std::vector<std::string>& alternates,
                                 RowQueue* sink,
                                 const CancellationToken& token,
                                 uint64_t parent_span) {
    std::vector<std::string> candidates;
    candidates.push_back(subquery.source_id);
    candidates.insert(candidates.end(), alternates.begin(), alternates.end());
    // Per-leaf jitter RNG, derived from the session seed and the leaf's
    // primary source so repeated sessions replay the same backoff schedule.
    uint64_t seed = options_.seed ^ UINT64_C(0x7fb5d329728ea185);
    for (char c : subquery.source_id) {
      seed = seed * 131 + static_cast<uint64_t>(c);
    }
    Rng rng(seed);
    BreakerRegistry* breakers = options_.breakers;
    Status last = Status::Unavailable("no candidate source attempted");
    size_t start = 0;
    if (options_.hedge.enabled && candidates.size() >= 2 &&
        hedge_budget_query_.load(std::memory_order_relaxed) > 0 &&
        !token.IsCancelled()) {
      HedgeOutcome hedged = ExecuteLeafHedged(subquery, candidates, sink,
                                              token, &rng, parent_span);
      if (hedged.decided) return hedged.status;
      // Both raced arms failed; fall through to the remaining alternates.
      start = hedged.raced;
      last = hedged.status;
    }
    for (size_t i = start; i < candidates.size(); ++i) {
      if (token.IsCancelled()) return token.ToStatus();
      const std::string& source = candidates[i];
      if (i > 0) {
        failovers_counter_->Increment();
        AddRecoveryEvent("failover " + subquery.source_id + " -> " + source +
                         " after: " + last.message());
      }
      if (breakers != nullptr && !breakers->AllowRequest(source)) {
        breaker_rejections_counter_->Increment();
        last = Status::Unavailable("circuit breaker open for source '" +
                                   source + "'");
        continue;
      }
      Result<SourceWrapper*> wrapper = WrapperFor(source);
      if (!wrapper.ok()) {
        last = wrapper.status();
        continue;
      }
      SubQuery sq = subquery;
      sq.source_id = source;
      net::DelayChannel* channel = ChannelFor(source);
      int retries = 0;
      Status st = ExecuteWithRetry(*wrapper, sq, channel, sink, token, &rng,
                                   &retries, parent_span);
      if (retries > 0) {
        retries_counter_->Increment(static_cast<uint64_t>(retries));
        local_metrics_.GetCounter("source." + source + ".retries")
            ->Increment(static_cast<uint64_t>(retries));
        AddRecoveryEvent("retried " + source + " x" +
                         std::to_string(retries));
      }
      if (st.ok()) {
        if (breakers != nullptr) breakers->OnSuccess(source);
        return st;
      }
      if (breakers != nullptr) {
        breakers->OnFailure(source);
        if (breakers->IsOpen(source)) {
          AddRecoveryEvent("breaker opened for " + source);
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        failed_sources_[source] = st.message();
      }
      last = st;
      if (token.IsCancelled()) return token.ToStatus();
    }
    return last;
  }

  // A leaf (or bind-join probe) was unrecoverable. Best-effort drops its
  // contribution and marks the answer partial; fail-fast surfaces the
  // error as the execution's status.
  void HandleLeafFailure(const Status& status, const CancellationToken& token) {
    if (options_.failure_mode == FailureMode::kBestEffort &&
        !token.IsCancelled()) {
      std::lock_guard<std::mutex> lock(mu_);
      degraded_ = true;
      return;
    }
    RecordError(status);
  }

  // A node's output queue plus its runtime recorder (null when metrics
  // collection is off, so instrumented and plain paths stay separable).
  struct NodeQueue {
    RowQueuePtr queue;
    std::shared_ptr<OpRuntimeRec> runtime;
  };

  // Creates a node's output queue with an operator-statistics counter (and,
  // when metrics are on, a queue-wait observer) attached — both before any
  // producer thread starts.
  NodeQueue MakeOutQueue(const FedPlanNode& node) {
    auto queue = std::make_shared<RowQueue>(kQueueCapacity);
    std::string label = node.Describe();
    if (size_t nl = label.find('\n'); nl != std::string::npos) {
      label = label.substr(0, nl);
    }
    auto counter = std::make_shared<std::atomic<uint64_t>>(0);
    queue->set_push_counter(counter);
    std::shared_ptr<OpRuntimeRec> runtime;
    if (options_.collect_metrics) {
      runtime = std::make_shared<OpRuntimeRec>(
          sink_->GetHistogram("queue.push_wait_ms"),
          sink_->GetHistogram("queue.pop_wait_ms"));
      queue->set_wait_observer(runtime);
    }
    // Leaf operators carry the source they scan, so the profiler can charge
    // that source's simulated network delay against them.
    std::string source_id;
    if (node.kind == FedPlanNode::Kind::kService ||
        node.kind == FedPlanNode::Kind::kDependentJoin) {
      source_id = node.subquery.source_id;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      operator_counters_.push_back({std::move(label), node.stats_key,
                                    node.estimated_rows, std::move(counter),
                                    std::move(source_id), runtime});
    }
    RegisterQueue(queue);
    return {std::move(queue), std::move(runtime)};
  }

  // Spawns the subtree rooted at `node`; returns its output queue.
  RowQueuePtr StartNode(const FedPlanNode& node) {
    switch (node.kind) {
      case FedPlanNode::Kind::kService: return StartService(node);
      case FedPlanNode::Kind::kJoin: return StartJoin(node);
      case FedPlanNode::Kind::kLeftJoin: return StartLeftJoin(node);
      case FedPlanNode::Kind::kDependentJoin: return StartDependentJoin(node);
      case FedPlanNode::Kind::kUnion: return StartUnion(node);
      case FedPlanNode::Kind::kFilter: return StartFilter(node);
      case FedPlanNode::Kind::kProject: return StartProject(node);
      case FedPlanNode::Kind::kOrderBy: return StartOrderBy(node);
      case FedPlanNode::Kind::kDistinct: return StartDistinct(node);
      case FedPlanNode::Kind::kLimit: return StartLimit(node);
    }
    auto q = std::make_shared<RowQueue>(kQueueCapacity);
    q->Close();
    return q;
  }

  RowQueuePtr StartService(const FedPlanNode& node) {
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    if (FaultTolerant()) {
      SubQuery subquery = node.subquery;
      std::vector<std::string> alternates = node.failover_sources;
      CancellationToken token = token_;
      threads_.emplace_back([this, subquery, alternates, out, rec, token] {
        obs::Span op(spans_, "service:" + subquery.source_id, exec_span_id_);
        WallTimer wall(rec);
        const uint64_t op_span = op.id();
        Status st = ExecuteLeafMaybeCached(
            subquery, out.get(), token, op_span, [&](RowQueue* sink) {
              return ExecuteLeafWithRecovery(subquery, alternates, sink,
                                             token, op_span);
            });
        if (!st.ok()) HandleLeafFailure(st, token);
        out->Close();
      });
      return out;
    }
    auto wrapper = WrapperFor(node.subquery.source_id);
    if (!wrapper.ok()) {
      RecordError(wrapper.status());
      out->Close();
      return out;
    }
    SourceWrapper* w = *wrapper;
    net::DelayChannel* channel = ChannelFor(node.subquery.source_id);
    SubQuery subquery = node.subquery;
    CancellationToken token = token_;
    threads_.emplace_back([this, w, channel, subquery, out, rec, token] {
      obs::Span op(spans_, "service:" + subquery.source_id, exec_span_id_);
      WallTimer wall(rec);
      const uint64_t op_span = op.id();
      Status st = ExecuteLeafMaybeCached(
          subquery, out.get(), token, op_span, [&](RowQueue* sink) {
            return WrapperCall(w, subquery, channel, sink, token, op_span);
          });
      if (!st.ok()) RecordError(st);
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartJoin(const FedPlanNode& node) {
    RowQueuePtr left = StartNode(*node.children[0]);
    RowQueuePtr right = StartNode(*node.children[1]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;

    // Tag-merge both inputs into one queue so the join thread can react to
    // whichever side delivers next (the adaptive part of agjoin).
    struct Tagged {
      int side;
      rdf::Binding row;
    };
    auto merged = std::make_shared<BlockingQueue<Tagged>>(kQueueCapacity);
    RegisterQueue(merged);
    auto active = std::make_shared<std::atomic<int>>(2);
    CancellationToken token = token_;
    const size_t batch = batch_;
    auto forward = [merged, active, token, batch](RowQueuePtr in, int side) {
      std::vector<rdf::Binding> rows;
      std::vector<Tagged> tagged;
      while (in->PopBatch(&rows, batch, token) > 0) {
        tagged.clear();
        tagged.reserve(rows.size());
        for (rdf::Binding& row : rows) tagged.push_back({side, std::move(row)});
        if (!merged->PushBatch(&tagged, token)) break;
      }
      in->Close();
      if (active->fetch_sub(1) == 1) merged->Close();
    };
    threads_.emplace_back(forward, left, 0);
    threads_.emplace_back(forward, right, 1);

    std::vector<std::string> join_vars = node.join_vars;
    threads_.emplace_back([this, merged, out, left, right, join_vars, rec,
                           token, batch] {
      obs::Span op(spans_, "join", exec_span_id_);
      WallTimer wall(rec);
      std::unordered_map<std::string, std::vector<rdf::Binding>> table[2];
      std::vector<Tagged> in_batch;
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool open = true;
      while (open && merged->PopBatch(&in_batch, batch, token) > 0) {
        for (Tagged& item : in_batch) {
          const int side = item.side;
          const rdf::Binding& row = item.row;
          if (!HasAllVars(row, join_vars)) continue;
          std::string key = JoinKey(row, join_vars);
          table[side][key].push_back(row);
          auto it = table[1 - side].find(key);
          if (it == table[1 - side].end()) continue;
          for (const rdf::Binding& other : it->second) {
            rdf::Binding merged_row = side == 0 ? MergeBindings(row, other)
                                                : MergeBindings(other, row);
            if (!writer.Add(std::move(merged_row))) {
              open = false;
              break;
            }
          }
          if (!open) break;
        }
        if (open) open = writer.Flush();
      }
      writer.Flush();
      merged->Close();
      left->Close();
      right->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartLeftJoin(const FedPlanNode& node) {
    // OPTIONAL semantics: the right side (the optional star) must complete
    // before unmatched left rows can be emitted, so the right input is
    // materialized into a hash table, then the left streams through.
    RowQueuePtr left = StartNode(*node.children[0]);
    RowQueuePtr right = StartNode(*node.children[1]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    std::vector<std::string> join_vars = node.join_vars;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, left, right, out, join_vars, rec, token,
                           batch] {
      obs::Span op(spans_, "leftjoin", exec_span_id_);
      WallTimer wall(rec);
      std::unordered_map<std::string, std::vector<rdf::Binding>> table;
      std::vector<rdf::Binding> rows;
      while (right->PopBatch(&rows, batch, token) > 0) {
        for (rdf::Binding& row : rows) {
          if (!HasAllVars(row, join_vars)) continue;
          table[JoinKey(row, join_vars)].push_back(std::move(row));
        }
      }
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool open = true;
      while (open && left->PopBatch(&rows, batch, token) > 0) {
        for (rdf::Binding& row : rows) {
          auto it = HasAllVars(row, join_vars)
                        ? table.find(JoinKey(row, join_vars))
                        : table.end();
          if (it == table.end() || it->second.empty()) {
            // No extension: keep the left row (left-outer semantics).
            if (!writer.Add(std::move(row))) {
              open = false;
              break;
            }
            continue;
          }
          for (const rdf::Binding& extension : it->second) {
            if (!writer.Add(MergeBindings(row, extension))) {
              open = false;
              break;
            }
          }
          if (!open) break;
        }
        if (open) open = writer.Flush();
      }
      left->Close();
      right->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartOrderBy(const FedPlanNode& node) {
    RowQueuePtr in = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    std::vector<sparql::OrderCondition> order_by = node.order_by;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, in, out, order_by, rec, token, batch] {
      obs::Span op(spans_, "orderby", exec_span_id_);
      WallTimer wall(rec);
      std::vector<rdf::Binding> rows;
      std::vector<rdf::Binding> in_batch;
      while (in->PopBatch(&in_batch, batch, token) > 0) {
        for (rdf::Binding& row : in_batch) rows.push_back(std::move(row));
      }
      std::stable_sort(
          rows.begin(), rows.end(),
          [&](const rdf::Binding& a, const rdf::Binding& b) {
            for (const sparql::OrderCondition& cond : order_by) {
              auto ita = a.find(cond.variable);
              auto itb = b.find(cond.variable);
              bool ba = ita != a.end(), bb = itb != b.end();
              int c;
              if (!ba && !bb) {
                c = 0;
              } else if (ba != bb) {
                c = ba ? 1 : -1;  // unbound sorts first
              } else {
                c = sparql::CompareTermsSparql(ita->second, itb->second);
              }
              if (c != 0) return cond.ascending ? c < 0 : c > 0;
            }
            return false;
          });
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      for (rdf::Binding& row : rows) {
        if (!writer.Add(std::move(row))) break;
      }
      writer.Flush();
      in->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartDependentJoin(const FedPlanNode& node) {
    RowQueuePtr left = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    auto wrapper = WrapperFor(node.subquery.source_id);
    if (!wrapper.ok()) {
      RecordError(wrapper.status());
      out->Close();
      return out;
    }
    SourceWrapper* w = *wrapper;
    net::DelayChannel* channel = ChannelFor(node.subquery.source_id);
    SubQuery subquery = node.subquery;
    std::vector<std::string> join_vars = node.join_vars;
    std::vector<std::string> failover = node.failover_sources;
    CancellationToken token = token_;

    const size_t batch = batch_;
    threads_.emplace_back([this, w, channel, subquery, join_vars, failover,
                           left, out, rec, token, batch] {
      obs::Span op(spans_, "depjoin:" + subquery.source_id, exec_span_id_);
      WallTimer wall(rec);
      const uint64_t op_span = op.id();
      const std::string& bind_var = join_vars.front();
      // Left rows accumulate into a probe window per instantiated
      // round trip. The window ramps from kDependentJoinBatch up to the
      // exchange morsel size: early answers still need only 64 left rows,
      // while long probes amortize the per-call cost (SQL translation +
      // inner scan) over up to batch_size instantiations. Windowing only
      // partitions the probe rows, so the join's binding multiset is
      // unchanged.
      size_t window = kDependentJoinBatch;
      const size_t max_window = std::max(batch, kDependentJoinBatch);
      std::vector<rdf::Binding> probe;
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool cancelled = false;

      auto flush = [&]() -> bool {
        if (probe.empty()) return true;
        if (token.IsCancelled()) return false;
        // Distinct instantiation terms for the bound variable.
        std::vector<rdf::Term> terms;
        std::unordered_set<std::string> seen;
        for (const rdf::Binding& row : probe) {
          auto it = row.find(bind_var);
          if (it == row.end()) continue;
          if (seen.insert(it->second.ToString()).second) {
            terms.push_back(it->second);
          }
        }
        SubQuery bound = subquery;
        bound.instantiations[bind_var] = std::move(terms);
        // Execute synchronously into a local queue large enough to never
        // block (we are the only consumer and drain afterwards).
        RowQueue local(static_cast<size_t>(1) << 30);
        Status st = ExecuteLeafMaybeCached(
            bound, &local, token, op_span, [&](RowQueue* sink) {
              return FaultTolerant()
                         ? ExecuteLeafWithRecovery(bound, failover, sink,
                                                   token, op_span)
                         : WrapperCall(w, bound, channel, sink, token,
                                       op_span);
            });
        if (!st.ok()) {
          if (FaultTolerant()) {
            HandleLeafFailure(st, token);
          } else {
            RecordError(st);
          }
          return false;
        }
        local.Close();
        std::unordered_map<std::string, std::vector<rdf::Binding>> right;
        std::vector<rdf::Binding> drained;
        while (local.PopBatch(&drained, batch, token) > 0) {
          for (rdf::Binding& row : drained) {
            if (!HasAllVars(row, join_vars)) continue;
            right[JoinKey(row, join_vars)].push_back(std::move(row));
          }
        }
        for (const rdf::Binding& lrow : probe) {
          if (!HasAllVars(lrow, join_vars)) continue;
          auto it = right.find(JoinKey(lrow, join_vars));
          if (it == right.end()) continue;
          for (const rdf::Binding& rrow : it->second) {
            if (!writer.Add(MergeBindings(lrow, rrow))) return false;
          }
        }
        probe.clear();
        return writer.Flush();
      };

      std::vector<rdf::Binding> in_rows;
      while (!cancelled && left->PopBatch(&in_rows, batch, token) > 0) {
        for (rdf::Binding& row : in_rows) {
          probe.push_back(std::move(row));
          if (probe.size() >= window) {
            if (!flush()) {
              cancelled = true;
              break;
            }
            window = std::min(window * 2, max_window);
          }
        }
      }
      if (!cancelled) flush();
      left->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartUnion(const FedPlanNode& node) {
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    auto active =
        std::make_shared<std::atomic<int>>(static_cast<int>(
            node.children.size()));
    CancellationToken token = token_;
    const size_t batch = batch_;
    for (const FedPlanPtr& child : node.children) {
      RowQueuePtr in = StartNode(*child);
      threads_.emplace_back([this, in, out, active, rec, token, batch] {
        obs::Span op(spans_, "union-arm", exec_span_id_);
        WallTimer wall(rec);
        std::vector<rdf::Binding> rows;
        while (in->PopBatch(&rows, batch, token) > 0) {
          if (!out->PushBatch(&rows, token)) break;
        }
        in->Close();
        if (active->fetch_sub(1) == 1) out->Close();
      });
    }
    return out;
  }

  RowQueuePtr StartFilter(const FedPlanNode& node) {
    RowQueuePtr in = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    std::vector<sparql::FilterExprPtr> filters = node.filters;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, in, out, filters, rec, token, batch] {
      obs::Span op(spans_, "filter", exec_span_id_);
      WallTimer wall(rec);
      std::vector<rdf::Binding> rows;
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool open = true;
      while (open && in->PopBatch(&rows, batch, token) > 0) {
        for (rdf::Binding& row : rows) {
          bool pass = true;
          for (const sparql::FilterExprPtr& f : filters) {
            Result<bool> r = f->EvalBool(row);
            // Evaluation errors (unbound variables, bad regex) reject the
            // solution, matching the reference evaluator.
            if (!r.ok() || !*r) {
              pass = false;
              break;
            }
          }
          if (pass && !writer.Add(std::move(row))) {
            open = false;
            break;
          }
        }
        if (open) open = writer.Flush();
      }
      in->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartProject(const FedPlanNode& node) {
    RowQueuePtr in = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    std::vector<std::string> projection = node.projection;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, in, out, projection, rec, token, batch] {
      obs::Span op(spans_, "project", exec_span_id_);
      WallTimer wall(rec);
      std::vector<rdf::Binding> rows;
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool open = true;
      while (open && in->PopBatch(&rows, batch, token) > 0) {
        for (rdf::Binding& row : rows) {
          rdf::Binding projected;
          for (const std::string& v : projection) {
            auto it = row.find(v);
            if (it != row.end()) projected.emplace(v, it->second);
          }
          if (!writer.Add(std::move(projected))) {
            open = false;
            break;
          }
        }
        if (open) open = writer.Flush();
      }
      in->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartDistinct(const FedPlanNode& node) {
    RowQueuePtr in = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, in, out, rec, token, batch] {
      obs::Span op(spans_, "distinct", exec_span_id_);
      WallTimer wall(rec);
      std::unordered_set<std::string> seen;
      std::vector<rdf::Binding> rows;
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool open = true;
      while (open && in->PopBatch(&rows, batch, token) > 0) {
        for (rdf::Binding& row : rows) {
          std::string key;
          for (const auto& [var, term] : row) {
            key += var;
            key.push_back('\x02');
            key += term.ToString();
            key.push_back('\x01');
          }
          if (!seen.insert(key).second) continue;
          if (!writer.Add(std::move(row))) {
            open = false;
            break;
          }
        }
        if (open) open = writer.Flush();
      }
      in->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartLimit(const FedPlanNode& node) {
    RowQueuePtr in = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    int64_t limit = node.limit;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, in, out, limit, rec, token, batch] {
      obs::Span op(spans_, "limit", exec_span_id_);
      WallTimer wall(rec);
      int64_t emitted = 0;
      std::vector<rdf::Binding> rows;
      while (emitted < limit) {
        // Capping the pop at the remaining budget keeps surplus rows in
        // the input queue, so exactly `limit` rows pass — no torn batch.
        const size_t want = std::min<size_t>(
            batch, static_cast<size_t>(limit - emitted));
        if (in->PopBatch(&rows, want, token) == 0) break;
        emitted += static_cast<int64_t>(rows.size());
        if (!out->PushBatch(&rows, token)) break;
      }
      in->Close();  // cancels upstream
      out->Close();
    });
    return out;
  }

  // --- cooperative task dataflow (options_.scheduler != nullptr) --------
  // One StartXxxTasks per StartXxx, building the same queue topology but
  // registering scheduler tasks instead of spawning threads. Blocking leaf
  // legs become I/O-pool jobs with unchanged bodies.

  // Registers `task` and defers its initial wake to the end of Start().
  svc::Scheduler::TaskRef AddTask(std::unique_ptr<svc::Task> task) {
    svc::Scheduler::TaskRef ref = sched_->Register(std::move(task));
    svc::Scheduler* sched = sched_;
    deferred_starts_.push_back([sched, ref] { sched->Wake(ref); });
    return ref;
  }

  template <typename Q>
  void WakeOnReadable(const std::shared_ptr<Q>& queue,
                      const svc::Scheduler::TaskRef& ref) {
    svc::Scheduler* sched = sched_;
    queue->AddReadableListener([sched, ref] { sched->Wake(ref); });
  }

  template <typename Q>
  void WakeOnWritable(const std::shared_ptr<Q>& queue,
                      const svc::Scheduler::TaskRef& ref) {
    svc::Scheduler* sched = sched_;
    queue->AddWritableListener([sched, ref] { sched->Wake(ref); });
  }

  // Defers a one-shot blocking job to the scheduler's I/O pool, tracked by
  // the execution's task group so Finish() waits for it.
  void SubmitIoJob(std::function<void()> job) {
    task_group_->Add();
    std::shared_ptr<TaskGroup> group = task_group_;
    svc::Scheduler* sched = sched_;
    deferred_starts_.push_back([sched, group, job = std::move(job)] {
      sched->SubmitIo([group, job] {
        job();
        group->Done();
      });
    });
  }

  RowQueuePtr StartNodeTasks(const FedPlanNode& node) {
    switch (node.kind) {
      case FedPlanNode::Kind::kService: return StartServiceTasks(node);
      case FedPlanNode::Kind::kJoin: return StartJoinTasks(node);
      case FedPlanNode::Kind::kLeftJoin: return StartLeftJoinTasks(node);
      case FedPlanNode::Kind::kDependentJoin:
        return StartDependentJoinTasks(node);
      case FedPlanNode::Kind::kUnion: return StartUnionTasks(node);
      case FedPlanNode::Kind::kFilter: return StartFilterTasks(node);
      case FedPlanNode::Kind::kProject: return StartProjectTasks(node);
      case FedPlanNode::Kind::kOrderBy: return StartOrderByTasks(node);
      case FedPlanNode::Kind::kDistinct: return StartDistinctTasks(node);
      case FedPlanNode::Kind::kLimit: return StartLimitTasks(node);
    }
    auto q = std::make_shared<RowQueue>(kQueueCapacity);
    q->Close();
    return q;
  }

  // Leaves keep their exact thread bodies (including the recovery ladder)
  // but run them as I/O-pool jobs: a wrapper call sleeps on the simulated
  // network and may block pushing into a full queue, neither of which a
  // compute worker should sit out.
  RowQueuePtr StartServiceTasks(const FedPlanNode& node) {
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    if (FaultTolerant()) {
      SubQuery subquery = node.subquery;
      std::vector<std::string> alternates = node.failover_sources;
      CancellationToken token = token_;
      SubmitIoJob([this, subquery, alternates, out, rec, token] {
        obs::Span op(spans_, "service:" + subquery.source_id, exec_span_id_);
        WallTimer wall(rec);
        const uint64_t op_span = op.id();
        Status st = ExecuteLeafMaybeCached(
            subquery, out.get(), token, op_span, [&](RowQueue* sink) {
              return ExecuteLeafWithRecovery(subquery, alternates, sink,
                                             token, op_span);
            });
        if (!st.ok()) HandleLeafFailure(st, token);
        out->Close();
      });
      return out;
    }
    auto wrapper = WrapperFor(node.subquery.source_id);
    if (!wrapper.ok()) {
      RecordError(wrapper.status());
      out->Close();
      return out;
    }
    SourceWrapper* w = *wrapper;
    net::DelayChannel* channel = ChannelFor(node.subquery.source_id);
    SubQuery subquery = node.subquery;
    CancellationToken token = token_;
    SubmitIoJob([this, w, channel, subquery, out, rec, token] {
      obs::Span op(spans_, "service:" + subquery.source_id, exec_span_id_);
      WallTimer wall(rec);
      const uint64_t op_span = op.id();
      Status st = ExecuteLeafMaybeCached(
          subquery, out.get(), token, op_span, [&](RowQueue* sink) {
            return WrapperCall(w, subquery, channel, sink, token, op_span);
          });
      if (!st.ok()) RecordError(st);
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartJoinTasks(const FedPlanNode& node) {
    RowQueuePtr left = StartNodeTasks(*node.children[0]);
    RowQueuePtr right = StartNodeTasks(*node.children[1]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    auto merged = std::make_shared<BlockingQueue<TaggedRow>>(kQueueCapacity);
    RegisterQueue(merged);
    auto active = std::make_shared<std::atomic<int>>(2);
    CancellationToken token = token_;
    const size_t batch = batch_;
    for (int side = 0; side < 2; ++side) {
      RowQueuePtr in = side == 0 ? left : right;
      auto forward = std::make_unique<RelayTask<rdf::Binding, TaggedRow>>(
          task_group_, nullptr, obs::Span(), in, merged, batch, token,
          [side](std::vector<rdf::Binding>&& rows,
                 TaskWriter<TaggedRow>* w) {
            for (rdf::Binding& row : rows) {
              w->Add(TaggedRow{side, std::move(row)});
            }
            return true;
          },
          nullptr,
          [in, merged, active] {
            in->Close();
            if (active->fetch_sub(1) == 1) merged->Close();
          });
      svc::Scheduler::TaskRef ref = AddTask(std::move(forward));
      WakeOnReadable(in, ref);
      WakeOnWritable(merged, ref);
    }
    std::vector<std::string> join_vars = node.join_vars;
    // The symmetric hash tables live inside the (mutable) process closure:
    // Step() is never re-entered, so they need no synchronization.
    auto join_process =
        [join_vars,
         table = std::array<
             std::unordered_map<std::string, std::vector<rdf::Binding>>, 2>{}](
            std::vector<TaggedRow>&& in_batch,
            TaskWriter<rdf::Binding>* w) mutable {
          for (TaggedRow& item : in_batch) {
            const int side = item.side;
            const rdf::Binding& row = item.row;
            if (!HasAllVars(row, join_vars)) continue;
            std::string key = JoinKey(row, join_vars);
            table[side][key].push_back(row);
            auto it = table[1 - side].find(key);
            if (it == table[1 - side].end()) continue;
            for (const rdf::Binding& other : it->second) {
              w->Add(side == 0 ? MergeBindings(row, other)
                               : MergeBindings(other, row));
            }
          }
          return true;
        };
    auto join = std::make_unique<RelayTask<TaggedRow, rdf::Binding>>(
        task_group_, rec, obs::Span(spans_, "join", exec_span_id_), merged,
        out, batch, token, std::move(join_process), nullptr,
        [merged, left, right, out] {
          merged->Close();
          left->Close();
          right->Close();
          out->Close();
        });
    svc::Scheduler::TaskRef ref = AddTask(std::move(join));
    WakeOnReadable(merged, ref);
    WakeOnWritable(out, ref);
    return out;
  }

  RowQueuePtr StartLeftJoinTasks(const FedPlanNode& node) {
    RowQueuePtr left = StartNodeTasks(*node.children[0]);
    RowQueuePtr right = StartNodeTasks(*node.children[1]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    auto task = std::make_unique<LeftJoinTask>(
        task_group_, nq.runtime,
        obs::Span(spans_, "leftjoin", exec_span_id_), left, right, out,
        batch_, token_, node.join_vars, [left, right, out] {
          left->Close();
          right->Close();
          out->Close();
        });
    svc::Scheduler::TaskRef ref = AddTask(std::move(task));
    WakeOnReadable(left, ref);
    WakeOnReadable(right, ref);
    WakeOnWritable(out, ref);
    return out;
  }

  RowQueuePtr StartDependentJoinTasks(const FedPlanNode& node) {
    RowQueuePtr left = StartNodeTasks(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    auto wrapper = WrapperFor(node.subquery.source_id);
    if (!wrapper.ok()) {
      RecordError(wrapper.status());
      out->Close();
      return out;
    }
    SourceWrapper* w = *wrapper;
    net::DelayChannel* channel = ChannelFor(node.subquery.source_id);
    SubQuery subquery = node.subquery;
    std::vector<std::string> failover = node.failover_sources;
    CancellationToken token = token_;
    obs::Span op(spans_, "depjoin:" + subquery.source_id, exec_span_id_);
    const uint64_t op_span = op.id();
    auto task = std::make_unique<DependentJoinTask>(
        task_group_, nq.runtime, std::move(op), left, out, batch_, token,
        node.join_vars, subquery, [left, out] {
          left->Close();
          out->Close();
        });
    DependentJoinTask* t = task.get();
    svc::Scheduler::TaskRef ref = AddTask(std::move(task));
    WakeOnReadable(left, ref);
    WakeOnWritable(out, ref);
    // Each probe runs the blocking leaf leg on the I/O pool, fills the
    // result cell and wakes the parked task. Tracked by the task group so
    // Finish() outlasts in-flight probes.
    std::shared_ptr<TaskGroup> group = task_group_;
    svc::Scheduler* sched = sched_;
    const size_t batch = batch_;
    t->set_probe_fn([this, w, channel, failover, token, op_span, ref, group,
                     sched, batch](SubQuery bound,
                                   std::shared_ptr<ProbeResult> result) {
      group->Add();
      sched->SubmitIo([this, w, channel, failover, token, op_span, ref,
                       group, sched, batch, bound = std::move(bound),
                       result = std::move(result)]() mutable {
        // Execute into a local queue large enough to never block (the job
        // is the only consumer and drains afterwards).
        RowQueue local(static_cast<size_t>(1) << 30);
        Status st = ExecuteLeafMaybeCached(
            bound, &local, token, op_span, [&](RowQueue* sink) {
              return FaultTolerant()
                         ? ExecuteLeafWithRecovery(bound, failover, sink,
                                                   token, op_span)
                         : WrapperCall(w, bound, channel, sink, token,
                                       op_span);
            });
        if (st.ok()) {
          local.Close();
          std::vector<rdf::Binding> drained;
          while (local.PopBatch(&drained, batch, token) > 0) {
            for (rdf::Binding& row : drained) {
              result->rows.push_back(std::move(row));
            }
          }
        } else {
          if (FaultTolerant()) {
            HandleLeafFailure(st, token);
          } else {
            RecordError(st);
          }
          result->failed = true;
        }
        {
          std::lock_guard<std::mutex> lock(result->mu);
          result->ready = true;
        }
        sched->Wake(ref);
        group->Done();
      });
    });
    return out;
  }

  RowQueuePtr StartUnionTasks(const FedPlanNode& node) {
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    auto active = std::make_shared<std::atomic<int>>(
        static_cast<int>(node.children.size()));
    CancellationToken token = token_;
    for (const FedPlanPtr& child : node.children) {
      RowQueuePtr in = StartNodeTasks(*child);
      auto arm = std::make_unique<RelayTask<rdf::Binding, rdf::Binding>>(
          task_group_, rec, obs::Span(spans_, "union-arm", exec_span_id_),
          in, out, batch_, token,
          [](std::vector<rdf::Binding>&& rows, TaskWriter<rdf::Binding>* w) {
            for (rdf::Binding& row : rows) w->Add(std::move(row));
            return true;
          },
          nullptr,
          [in, out, active] {
            in->Close();
            if (active->fetch_sub(1) == 1) out->Close();
          });
      svc::Scheduler::TaskRef ref = AddTask(std::move(arm));
      WakeOnReadable(in, ref);
      WakeOnWritable(out, ref);
    }
    return out;
  }

  // Builds the standard one-in/one-out relay wiring shared by the scalar
  // operators below.
  RowQueuePtr MakeRelay(const FedPlanNode& node, const char* span_name,
                        RowQueuePtr in,
                        RelayTask<rdf::Binding, rdf::Binding>::ProcessFn
                            process,
                        RelayTask<rdf::Binding, rdf::Binding>::FinalizeFn
                            finalize = nullptr) {
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    auto task = std::make_unique<RelayTask<rdf::Binding, rdf::Binding>>(
        task_group_, nq.runtime, obs::Span(spans_, span_name, exec_span_id_),
        in, out, batch_, token_, std::move(process), std::move(finalize),
        [in, out] {
          in->Close();
          out->Close();
        });
    svc::Scheduler::TaskRef ref = AddTask(std::move(task));
    WakeOnReadable(in, ref);
    WakeOnWritable(out, ref);
    return out;
  }

  RowQueuePtr StartFilterTasks(const FedPlanNode& node) {
    RowQueuePtr in = StartNodeTasks(*node.children[0]);
    std::vector<sparql::FilterExprPtr> filters = node.filters;
    return MakeRelay(
        node, "filter", in,
        [filters](std::vector<rdf::Binding>&& rows,
                  TaskWriter<rdf::Binding>* w) {
          for (rdf::Binding& row : rows) {
            bool pass = true;
            for (const sparql::FilterExprPtr& f : filters) {
              Result<bool> r = f->EvalBool(row);
              // Evaluation errors (unbound variables, bad regex) reject
              // the solution, matching the reference evaluator.
              if (!r.ok() || !*r) {
                pass = false;
                break;
              }
            }
            if (pass) w->Add(std::move(row));
          }
          return true;
        });
  }

  RowQueuePtr StartProjectTasks(const FedPlanNode& node) {
    RowQueuePtr in = StartNodeTasks(*node.children[0]);
    std::vector<std::string> projection = node.projection;
    return MakeRelay(
        node, "project", in,
        [projection](std::vector<rdf::Binding>&& rows,
                     TaskWriter<rdf::Binding>* w) {
          for (rdf::Binding& row : rows) {
            rdf::Binding projected;
            for (const std::string& v : projection) {
              auto it = row.find(v);
              if (it != row.end()) projected.emplace(v, it->second);
            }
            w->Add(std::move(projected));
          }
          return true;
        });
  }

  RowQueuePtr StartOrderByTasks(const FedPlanNode& node) {
    RowQueuePtr in = StartNodeTasks(*node.children[0]);
    std::vector<sparql::OrderCondition> order_by = node.order_by;
    // Materialize in process, sort and emit in finalize — two closures
    // sharing the buffer.
    auto rows = std::make_shared<std::vector<rdf::Binding>>();
    return MakeRelay(
        node, "orderby", in,
        [rows](std::vector<rdf::Binding>&& in_batch,
               TaskWriter<rdf::Binding>*) {
          for (rdf::Binding& row : in_batch) rows->push_back(std::move(row));
          return true;
        },
        [rows, order_by](TaskWriter<rdf::Binding>* w) {
          std::stable_sort(
              rows->begin(), rows->end(),
              [&](const rdf::Binding& a, const rdf::Binding& b) {
                for (const sparql::OrderCondition& cond : order_by) {
                  auto ita = a.find(cond.variable);
                  auto itb = b.find(cond.variable);
                  bool ba = ita != a.end(), bb = itb != b.end();
                  int c;
                  if (!ba && !bb) {
                    c = 0;
                  } else if (ba != bb) {
                    c = ba ? 1 : -1;  // unbound sorts first
                  } else {
                    c = sparql::CompareTermsSparql(ita->second, itb->second);
                  }
                  if (c != 0) return cond.ascending ? c < 0 : c > 0;
                }
                return false;
              });
          for (rdf::Binding& row : *rows) w->Add(std::move(row));
          rows->clear();
        });
  }

  RowQueuePtr StartDistinctTasks(const FedPlanNode& node) {
    RowQueuePtr in = StartNodeTasks(*node.children[0]);
    return MakeRelay(
        node, "distinct", in,
        [seen = std::unordered_set<std::string>{}](
            std::vector<rdf::Binding>&& rows,
            TaskWriter<rdf::Binding>* w) mutable {
          for (rdf::Binding& row : rows) {
            std::string key;
            for (const auto& [var, term] : row) {
              key += var;
              key.push_back('\x02');
              key += term.ToString();
              key.push_back('\x01');
            }
            if (!seen.insert(key).second) continue;
            w->Add(std::move(row));
          }
          return true;
        });
  }

  RowQueuePtr StartLimitTasks(const FedPlanNode& node) {
    RowQueuePtr in = StartNodeTasks(*node.children[0]);
    const int64_t limit = node.limit;
    // Returning false once the budget is spent completes the task, whose
    // done hook closes the input — cancelling upstream like the thread.
    return MakeRelay(
        node, "limit", in,
        [limit, emitted = int64_t{0}](std::vector<rdf::Binding>&& rows,
                                      TaskWriter<rdf::Binding>* w) mutable {
          for (rdf::Binding& row : rows) {
            if (emitted >= limit) return false;
            w->Add(std::move(row));
            ++emitted;
          }
          return emitted < limit;
        });
  }

  const std::map<std::string, SourceWrapper*>& wrappers_;
  PlanOptions options_;
  CancellationToken token_;
  // Morsel size of the exchange (>= 1; 1 = legacy row-at-a-time).
  const size_t batch_;
  // Batch being served row-by-row through the Next() shim.
  RowBatch pending_;
  size_t pending_pos_ = 0;
  RowQueuePtr root_;
  std::vector<std::thread> threads_;
  // Task mode (options_.scheduler != nullptr): the shared scheduler, the
  // outstanding-work counter Finish() waits on, and the kick-offs deferred
  // until the tree is fully wired. All empty/null in thread mode.
  svc::Scheduler* sched_ = nullptr;
  std::shared_ptr<TaskGroup> task_group_;
  std::vector<std::function<void()>> deferred_starts_;
  std::mutex mu_;
  Status error_;
  std::vector<std::function<void()>> closers_;
  std::map<std::string, std::unique_ptr<net::DelayChannel>> channels_;
  std::map<std::string, std::unique_ptr<net::FaultInjector>> injectors_;
  // Per-execution recovery counters (what ExecutionStats is derived from
  // at Finish — they must not be shared across a session's executions).
  // Also the fallback sink when no session registry is attached.
  obs::MetricsRegistry local_metrics_;
  // Where everything else is recorded: the session's registry (via
  // PlanOptions::metrics) when collection is on and one is attached, else
  // &local_metrics_. Local recovery counters are transferred over at
  // Finish with plain counter adds.
  obs::MetricsRegistry* sink_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* failovers_counter_ = nullptr;
  obs::Counter* breaker_rejections_counter_ = nullptr;
  // Tail-tolerance counters: created only when hedging / adaptive timeouts
  // are enabled (null otherwise, keeping the default registry unchanged).
  obs::Counter* hedges_fired_counter_ = nullptr;
  obs::Counter* hedge_wins_counter_ = nullptr;
  obs::Counter* hedges_cancelled_counter_ = nullptr;
  obs::Counter* hedges_suppressed_counter_ = nullptr;
  obs::Counter* adaptive_timeouts_counter_ = nullptr;
  // Sub-answer cache counters and validity stamp: set only when
  // PlanOptions::answer_cache is on (null/zero otherwise, keeping the
  // default registry and metrics JSON unchanged).
  obs::Counter* answer_hits_counter_ = nullptr;
  obs::Counter* answer_misses_counter_ = nullptr;
  EpochStamp answer_stamp_;
  // Remaining speculative launches this query may still make; per-source
  // usage lives in hedge_source_used_ (guarded by mu_).
  std::atomic<int> hedge_budget_query_{0};
  std::map<std::string, int> hedge_source_used_;
  obs::SpanRecorder* spans_ = nullptr;  // null when collection is off
  obs::Span exec_span_;
  uint64_t exec_span_id_ = 0;
  // Recovery accounting, guarded by mu_ while the dataflow runs.
  std::map<std::string, std::string> failed_sources_;
  std::vector<AnswerTrace::Event> recovery_events_;
  Stopwatch clock_;  // event timestamps, seconds since execution creation
  bool degraded_ = false;
  struct OperatorCounter {
    std::string label;
    std::string stats_key;  // feedback key; empty = no feedback
    double estimate;        // planner's estimate; -1 = none
    std::shared_ptr<std::atomic<uint64_t>> counter;
    std::string source_id;  // leaf operators: the source they scan
    std::shared_ptr<OpRuntimeRec> runtime;  // null when metrics are off
  };
  std::vector<OperatorCounter> operator_counters_;

  bool finished_ = false;
  Status final_status_;
  ExecutionStats stats_;
  std::vector<std::pair<std::string, uint64_t>> operator_rows_;
  std::vector<double> operator_estimates_;
  std::vector<obs::OperatorRuntime> operator_runtime_;
};

PlanExecution::PlanExecution(
    const std::map<std::string, SourceWrapper*>& wrappers,
    const PlanOptions& options, CancellationToken token)
    : impl_(std::make_unique<Impl>(wrappers, options, std::move(token))) {}

PlanExecution::~PlanExecution() = default;

void PlanExecution::Start(const FederatedPlan& plan) { impl_->Start(plan); }

bool PlanExecution::NextBatch(RowBatch* batch) {
  return impl_->NextBatch(batch);
}

std::optional<rdf::Binding> PlanExecution::Next() { return impl_->Next(); }

Status PlanExecution::Finish() { return impl_->Finish(); }

const ExecutionStats& PlanExecution::stats() const { return impl_->stats(); }

const std::vector<std::pair<std::string, uint64_t>>&
PlanExecution::operator_rows() const {
  return impl_->operator_rows();
}

const std::vector<double>& PlanExecution::operator_estimates() const {
  return impl_->operator_estimates();
}

const std::vector<obs::OperatorRuntime>& PlanExecution::operator_runtime()
    const {
  return impl_->operator_runtime();
}

const std::vector<AnswerTrace::Event>& PlanExecution::trace_events() const {
  return impl_->trace_events();
}

obs::MetricsSnapshot PlanExecution::metrics_snapshot() const {
  return impl_->metrics_snapshot();
}

void ExecutionStats::MergeFrom(const ExecutionStats& other) {
  messages_transferred += other.messages_transferred;
  network_delay_ms += other.network_delay_ms;
  source_rows += other.source_rows;
  for (const auto& [source, b] : other.per_source) {
    SourceBreakdown& mine = per_source[source];
    mine.rows += b.rows;
    mine.messages += b.messages;
    mine.delay_ms += b.delay_ms;
    mine.retries += b.retries;
  }
  retries += other.retries;
  failovers += other.failovers;
  faults_injected += other.faults_injected;
  breaker_rejections += other.breaker_rejections;
  hedges_fired += other.hedges_fired;
  hedge_wins += other.hedge_wins;
  hedges_cancelled += other.hedges_cancelled;
  hedges_suppressed += other.hedges_suppressed;
  adaptive_timeouts += other.adaptive_timeouts;
  latency_spikes_injected += other.latency_spikes_injected;
  sub_answer_hits += other.sub_answer_hits;
  sub_answer_misses += other.sub_answer_misses;
  for (const auto& [source, error] : other.failed_sources) {
    failed_sources[source] = error;
  }
  recovery_events.insert(recovery_events.end(), other.recovery_events.begin(),
                         other.recovery_events.end());
  partial = partial || other.partial;
}

std::string QueryAnswer::OperatorStatsText() const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < operator_rows.size(); ++i) {
    const auto& [label, rows] = operator_rows[i];
    std::snprintf(buf, sizeof(buf), "%10llu  ",
                  static_cast<unsigned long long>(rows));
    out += buf;
    out += label;
    if (i < operator_estimates.size() && operator_estimates[i] >= 0.0) {
      std::snprintf(buf, sizeof(buf), "  [est≈%lld]",
                    static_cast<long long>(operator_estimates[i]));
      out += buf;
    }
    out.push_back('\n');
  }
  if (!stats.per_source.empty()) {
    out += "per-source traffic:\n";
    for (const auto& [source, b] : stats.per_source) {
      std::snprintf(buf, sizeof(buf), "%10llu rows  %10llu msgs  %10.2f ms  ",
                    static_cast<unsigned long long>(b.rows),
                    static_cast<unsigned long long>(b.messages), b.delay_ms);
      out += buf;
      out += source;
      if (b.retries > 0) {
        out += "  (" + std::to_string(b.retries) + " retries)";
      }
      out.push_back('\n');
    }
  }
  // Recovery section: rendered only when the fault-tolerance layer acted,
  // so fault-free output is byte-identical to the historic format.
  if (stats.retries > 0 || stats.failovers > 0 || stats.faults_injected > 0 ||
      stats.breaker_rejections > 0 || stats.partial ||
      !stats.failed_sources.empty()) {
    out += "recovery: " + std::to_string(stats.retries) + " retries  " +
           std::to_string(stats.failovers) + " failovers  " +
           std::to_string(stats.faults_injected) + " faults injected  " +
           std::to_string(stats.breaker_rejections) + " breaker rejections";
    if (stats.partial) out += "  (partial answer)";
    out.push_back('\n');
    for (const auto& [source, error] : stats.failed_sources) {
      out += "  failed source " + source + ": " + error + "\n";
    }
  }
  // Tail-tolerance section: rendered only when hedging, adaptive timeouts
  // or latency-spike injection acted, like the recovery section above.
  if (stats.hedges_fired > 0 || stats.hedges_suppressed > 0 ||
      stats.adaptive_timeouts > 0 || stats.latency_spikes_injected > 0) {
    out += "tail tolerance: " + std::to_string(stats.hedges_fired) +
           " hedges fired  " + std::to_string(stats.hedge_wins) + " wins  " +
           std::to_string(stats.hedges_cancelled) + " cancelled  " +
           std::to_string(stats.hedges_suppressed) + " suppressed  " +
           std::to_string(stats.adaptive_timeouts) + " adaptive timeouts  " +
           std::to_string(stats.latency_spikes_injected) + " latency spikes\n";
  }
  // Reuse section: rendered only when the sub-answer cache was consulted,
  // so cache-off output is byte-identical to the historic format.
  if (stats.sub_answer_hits > 0 || stats.sub_answer_misses > 0) {
    out += "sub-answer cache: " + std::to_string(stats.sub_answer_hits) +
           " hits  " + std::to_string(stats.sub_answer_misses) + " misses\n";
  }
  return out;
}

Result<QueryAnswer> ExecutePlan(
    const FederatedPlan& plan,
    const std::map<std::string, SourceWrapper*>& wrappers,
    const PlanOptions& options, CancellationToken token) {
  QueryAnswer answer;
  answer.variables = plan.variables;
  answer.plan_text = plan.Explain();

  Stopwatch stopwatch;
  PlanExecution execution(wrappers, options, std::move(token));
  execution.Start(plan);
  RowBatch batch;
  while (execution.NextBatch(&batch)) {
    // All rows of a morsel became available to the client together, so they
    // share one arrival timestamp in the answer trace.
    const double now = stopwatch.ElapsedSeconds();
    for (rdf::Binding& row : batch.rows) {
      answer.trace.timestamps.push_back(now);
      answer.rows.push_back(std::move(row));
    }
  }
  answer.trace.completion_seconds = stopwatch.ElapsedSeconds();

  LAKEFED_RETURN_NOT_OK(execution.Finish());
  answer.trace.events = execution.trace_events();
  answer.stats = execution.stats();
  answer.operator_rows = execution.operator_rows();
  answer.operator_estimates = execution.operator_estimates();
  answer.operator_runtime = execution.operator_runtime();
  if (options.collect_metrics) {
    answer.metrics_json = execution.metrics_snapshot().ToJson();
  }
  return answer;
}

}  // namespace lakefed::fed
