#include "fed/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iterator>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/blocking_queue.h"
#include "common/retry.h"
#include "common/stopwatch.h"
#include "fed/breaker.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stats/stats_catalog.h"

namespace lakefed::fed {
namespace {

using RowQueue = BlockingQueue<rdf::Binding>;
using RowQueuePtr = std::shared_ptr<RowQueue>;

constexpr size_t kQueueCapacity = 4096;
constexpr size_t kDependentJoinBatch = 64;

// Serialized join key of a binding over `vars`. Empty vars = single bucket
// (cross product).
std::string JoinKey(const rdf::Binding& row,
                    const std::vector<std::string>& vars) {
  std::string key;
  for (const std::string& v : vars) {
    auto it = row.find(v);
    if (it == row.end()) return std::string();  // unmatched sentinel below
    key += it->second.ToString();
    key.push_back('\x01');
  }
  return key;
}

bool HasAllVars(const rdf::Binding& row,
                const std::vector<std::string>& vars) {
  for (const std::string& v : vars) {
    if (row.count(v) == 0) return false;
  }
  return true;
}

// Merges two compatible bindings (equal on shared variables by key
// construction).
rdf::Binding MergeBindings(const rdf::Binding& a, const rdf::Binding& b) {
  rdf::Binding out = a;
  out.insert(b.begin(), b.end());
  return out;
}

// Per-operator runtime recorder: attached as the wait observer of the
// operator's output queue (so push waits = backpressure on this operator,
// pop waits = consumer starvation for its output) and fed the operator
// thread's wall time. Lock-free — callbacks fire from producer and consumer
// threads concurrently. Also mirrors every wait into the execution-wide
// queue-wait histograms when those are attached.
class OpRuntimeRec : public QueueWaitObserver {
 public:
  OpRuntimeRec(obs::Histogram* push_wait_hist, obs::Histogram* pop_wait_hist)
      : push_wait_hist_(push_wait_hist), pop_wait_hist_(pop_wait_hist) {}

  void OnPushWait(double wait_ms) override {
    push_waits_.fetch_add(1, std::memory_order_relaxed);
    push_wait_us_.fetch_add(ToUs(wait_ms), std::memory_order_relaxed);
    if (push_wait_hist_ != nullptr) push_wait_hist_->Record(wait_ms);
  }

  void OnPopWait(double wait_ms) override {
    pop_waits_.fetch_add(1, std::memory_order_relaxed);
    pop_wait_us_.fetch_add(ToUs(wait_ms), std::memory_order_relaxed);
    if (pop_wait_hist_ != nullptr) pop_wait_hist_->Record(wait_ms);
  }

  void OnDepth(size_t depth) override {
    const uint64_t d = static_cast<uint64_t>(depth);
    depth_samples_.fetch_add(1, std::memory_order_relaxed);
    depth_sum_.fetch_add(d, std::memory_order_relaxed);
    uint64_t cur = peak_depth_.load(std::memory_order_relaxed);
    while (d > cur && !peak_depth_.compare_exchange_weak(
                          cur, d, std::memory_order_relaxed)) {
    }
  }

  // Operator-thread wall time. Concurrent producers of one queue (UNION
  // arms) keep the maximum — the arm that finished last bounds the
  // operator's elapsed time.
  void RecordWall(double wall_ms) {
    const uint64_t us = ToUs(wall_ms);
    uint64_t cur = wall_us_.load(std::memory_order_relaxed);
    while (us > cur && !wall_us_.compare_exchange_weak(
                           cur, us, std::memory_order_relaxed)) {
    }
    measured_.store(true, std::memory_order_relaxed);
  }

  // Call after every dataflow thread has joined.
  obs::OperatorRuntime Snapshot(std::string source_id) const {
    obs::OperatorRuntime rt;
    rt.source_id = std::move(source_id);
    rt.wall_ms = measured_.load(std::memory_order_relaxed)
                     ? static_cast<double>(
                           wall_us_.load(std::memory_order_relaxed)) /
                           1e3
                     : -1;
    rt.push_waits = push_waits_.load(std::memory_order_relaxed);
    rt.push_wait_ms =
        static_cast<double>(push_wait_us_.load(std::memory_order_relaxed)) /
        1e3;
    rt.pop_waits = pop_waits_.load(std::memory_order_relaxed);
    rt.pop_wait_ms =
        static_cast<double>(pop_wait_us_.load(std::memory_order_relaxed)) /
        1e3;
    rt.depth_samples = depth_samples_.load(std::memory_order_relaxed);
    rt.peak_depth = peak_depth_.load(std::memory_order_relaxed);
    rt.depth_sum =
        static_cast<double>(depth_sum_.load(std::memory_order_relaxed));
    return rt;
  }

 private:
  // Durations accumulate as integer microseconds so fetch_add stays a plain
  // atomic RMW (no double CAS loop on the hot path).
  static uint64_t ToUs(double ms) {
    return ms <= 0 ? 0 : static_cast<uint64_t>(ms * 1e3);
  }

  obs::Histogram* push_wait_hist_;
  obs::Histogram* pop_wait_hist_;
  std::atomic<uint64_t> push_waits_{0};
  std::atomic<uint64_t> push_wait_us_{0};
  std::atomic<uint64_t> pop_waits_{0};
  std::atomic<uint64_t> pop_wait_us_{0};
  std::atomic<uint64_t> depth_samples_{0};
  std::atomic<uint64_t> depth_sum_{0};
  std::atomic<uint64_t> peak_depth_{0};
  std::atomic<uint64_t> wall_us_{0};
  std::atomic<bool> measured_{false};
};

// Accumulates an operator's output rows and pushes them as morsels: one
// PushBatch per `batch_size` rows in steady state. Operators call Flush()
// after every consumed input batch, so batching never withholds rows that
// are ready — output granularity tracks input granularity and the stream
// keeps the row-at-a-time latency profile. batch_size 1 degenerates to a
// push per row (the legacy exchange, selectable for A/B runs).
template <typename T>
class BatchWriter {
 public:
  BatchWriter(BlockingQueue<T>* out, size_t batch_size,
              const CancellationToken& token)
      : out_(out), cap_(std::max<size_t>(1, batch_size)), token_(token) {}

  // Returns false when the downstream is gone (closed or cancelled) —
  // the operator must stop producing.
  bool Add(T row) {
    if (!open_) return false;
    buffer_.push_back(std::move(row));
    if (buffer_.size() >= cap_) open_ = out_->PushBatch(&buffer_, token_);
    return open_;
  }

  // Ships whatever has accumulated (partial-batch flush).
  bool Flush() {
    if (open_ && !buffer_.empty()) open_ = out_->PushBatch(&buffer_, token_);
    return open_;
  }

 private:
  BlockingQueue<T>* out_;
  const size_t cap_;
  CancellationToken token_;
  std::vector<T> buffer_;
  bool open_ = true;
};

// RAII wall-time probe for an operator thread: records elapsed time into
// the recorder at scope exit (null recorder = metrics off, no clock reads).
class WallTimer {
 public:
  explicit WallTimer(std::shared_ptr<OpRuntimeRec> rec)
      : rec_(std::move(rec)) {}
  ~WallTimer() {
    if (rec_ != nullptr) rec_->RecordWall(watch_.ElapsedMillis());
  }
  WallTimer(const WallTimer&) = delete;
  WallTimer& operator=(const WallTimer&) = delete;

 private:
  std::shared_ptr<OpRuntimeRec> rec_;
  Stopwatch watch_;
};

}  // namespace

// Builds the thread/queue dataflow of one plan instance and exposes its
// root queue. Teardown is two-layered: the cancellation token closes every
// queue as soon as it fires (waking blocked threads), and Finish() closes
// them again defensively before joining, so abandoning a stream mid-way can
// never leave a producer blocked on a full queue.
class PlanExecution::Impl {
 public:
  Impl(const std::map<std::string, SourceWrapper*>& wrappers,
       const PlanOptions& options, CancellationToken token)
      : wrappers_(wrappers),
        options_(options),
        token_(std::move(token)),
        batch_(std::max<size_t>(1, options.batch_size)) {
    // Recovery accounting always goes through the local registry (it is
    // what ExecutionStats reads at Finish, and it must stay per-execution:
    // a UNION session runs several executions whose stats are reported
    // separately). Histograms and spans are recorded only when metrics
    // collection is on, and directly into the session's registry when one
    // is attached — skipping a snapshot+merge round trip per query.
    retries_counter_ = local_metrics_.GetCounter("exec.retries");
    failovers_counter_ = local_metrics_.GetCounter("exec.failovers");
    breaker_rejections_counter_ =
        local_metrics_.GetCounter("exec.breaker_rejections");
    sink_ = options_.collect_metrics && options_.metrics != nullptr
                ? options_.metrics
                : &local_metrics_;
    if (options_.collect_metrics) spans_ = options_.spans;
  }

  ~Impl() { Finish(); }

  void Start(const FederatedPlan& plan) {
    exec_span_ = obs::Span(spans_, "execute", options_.parent_span);
    exec_span_id_ = exec_span_.id();
    root_ = StartNode(*plan.root);
  }

  bool NextBatch(RowBatch* batch) {
    // Rows the row-at-a-time shim already pulled are served first, so the
    // two pull forms interleave without loss or duplication.
    if (pending_pos_ < pending_.size()) {
      batch->rows.assign(
          std::make_move_iterator(pending_.rows.begin() +
                                  static_cast<ptrdiff_t>(pending_pos_)),
          std::make_move_iterator(pending_.rows.end()));
      pending_.clear();
      pending_pos_ = 0;
      return true;
    }
    batch->clear();
    if (root_ == nullptr || finished_) return false;
    return root_->PopBatch(&batch->rows, batch_, token_) > 0;
  }

  std::optional<rdf::Binding> Next() {
    if (pending_pos_ >= pending_.size()) {
      pending_.clear();
      pending_pos_ = 0;
      if (root_ == nullptr || finished_) return std::nullopt;
      if (root_->PopBatch(&pending_.rows, batch_, token_) == 0) {
        return std::nullopt;
      }
    }
    return std::move(pending_.rows[pending_pos_++]);
  }

  Status Finish() {
    if (finished_) return final_status_;
    CloseAllQueues();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      final_status_ = error_.ok() ? token_.ToStatus() : error_;
    }
    for (const auto& [source, channel] : channels_) {
      stats_.messages_transferred += channel->messages_transferred();
      stats_.network_delay_ms += channel->total_delay_ms();
      ExecutionStats::SourceBreakdown& breakdown = stats_.per_source[source];
      breakdown.messages += channel->messages_transferred();
      breakdown.rows += channel->messages_transferred();
      breakdown.delay_ms += channel->total_delay_ms();
    }
    stats_.source_rows = stats_.messages_transferred;
    for (const auto& [source, injector] : injectors_) {
      stats_.faults_injected += injector->faults_injected();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.failed_sources = failed_sources_;
      for (const AnswerTrace::Event& event : recovery_events_) {
        stats_.recovery_events.push_back(event.label);
      }
      stats_.partial = degraded_;
    }
    // Recovery counters live in the metrics registry (the single sink all
    // statistics channels feed); ExecutionStats is a projection of it.
    stats_.retries = retries_counter_->Value();
    stats_.failovers = failovers_counter_->Value();
    stats_.breaker_rejections = breaker_rejections_counter_->Value();
    constexpr const char* kRetriesSuffix = ".retries";
    for (const auto& [suffix, value] :
         local_metrics_.CountersWithPrefix("source.")) {
      if (suffix.size() > strlen(kRetriesSuffix) &&
          suffix.compare(suffix.size() - strlen(kRetriesSuffix),
                         strlen(kRetriesSuffix), kRetriesSuffix) == 0) {
        stats_.per_source[suffix.substr(
                              0, suffix.size() - strlen(kRetriesSuffix))]
            .retries += value;
      }
    }
    for (const auto& entry : operator_counters_) {
      operator_rows_.emplace_back(entry.label, entry.counter->load());
      operator_estimates_.push_back(entry.estimate);
      if (entry.runtime != nullptr) {
        operator_runtime_.push_back(entry.runtime->Snapshot(entry.source_id));
      } else {
        obs::OperatorRuntime rt;
        rt.source_id = entry.source_id;
        operator_runtime_.push_back(std::move(rt));
      }
      // Runtime cardinality feedback: fold the observed row count back into
      // the stats catalog, but only for clean completions — partial counts
      // of cancelled/expired runs would poison the estimates.
      if (options_.stats_catalog != nullptr && !entry.stats_key.empty() &&
          final_status_.ok()) {
        options_.stats_catalog->RecordActual(entry.stats_key,
                                             entry.counter->load());
      }
    }
    if (options_.collect_metrics) {
      sink_->GetCounter("exec.messages")
          ->Increment(stats_.messages_transferred);
      sink_->GetCounter("exec.source_rows")->Increment(stats_.source_rows);
      if (stats_.faults_injected > 0) {
        sink_->GetCounter("exec.faults_injected")
            ->Increment(stats_.faults_injected);
      }
      for (const auto& [source, breakdown] : stats_.per_source) {
        sink_->GetCounter("source." + source + ".messages")
            ->Increment(breakdown.messages);
        sink_->GetCounter("source." + source + ".rows")
            ->Increment(breakdown.rows);
      }
      for (const auto& entry : operator_counters_) {
        sink_->GetCounter("op.rows." + entry.label)
            ->Increment(entry.counter->load());
      }
      if (sink_ != &local_metrics_) {
        // Hand the per-execution recovery counters over to the session's
        // registry: everything else was recorded there directly, so the
        // transfer is a handful of counter adds, not a snapshot+merge.
        for (const auto& [name, value] :
             local_metrics_.CountersWithPrefix("")) {
          if (value > 0) sink_->GetCounter(name)->Increment(value);
        }
      }
    }
    exec_span_.End();
    finished_ = true;
    return final_status_;
  }

  // The registry this execution recorded into: the session's, when one was
  // attached, else the execution-local fallback (standalone ExecutePlan).
  // Stable once Finish() ran.
  obs::MetricsSnapshot metrics_snapshot() const { return sink_->Snapshot(); }

  const ExecutionStats& stats() const { return stats_; }
  const std::vector<std::pair<std::string, uint64_t>>& operator_rows() const {
    return operator_rows_;
  }
  const std::vector<double>& operator_estimates() const {
    return operator_estimates_;
  }
  const std::vector<obs::OperatorRuntime>& operator_runtime() const {
    return operator_runtime_;
  }
  // Timestamped recovery events; valid after Finish() like the stats.
  const std::vector<AnswerTrace::Event>& trace_events() const {
    return recovery_events_;
  }

 private:
  // Registers a queue for teardown: closed when the token fires and again
  // by Finish(). The closures capture the shared_ptr, keeping the queue
  // alive for as long as the token may still invoke the callback.
  template <typename Q>
  void RegisterQueue(const std::shared_ptr<Q>& queue) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closers_.push_back([queue] { queue->Close(); });
    }
    token_.OnCancel([queue] { queue->Close(); });
  }

  void CloseAllQueues() {
    std::vector<std::function<void()>> closers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closers = closers_;
    }
    for (const std::function<void()>& close : closers) close();
  }

  net::DelayChannel* ChannelFor(const std::string& source_id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(source_id);
    if (it == channels_.end()) {
      uint64_t seed = options_.seed;
      for (char c : source_id) seed = seed * 131 + static_cast<uint64_t>(c);
      it = channels_
               .emplace(source_id, std::make_unique<net::DelayChannel>(
                                       options_.network, seed))
               .first;
      // Attach the source's fault injector, seeded independently of the
      // delay sampling so fault schedules do not perturb the delays.
      auto fault = options_.faults.find(source_id);
      if (fault != options_.faults.end() && fault->second.Active()) {
        auto injector = std::make_unique<net::FaultInjector>(
            source_id, fault->second, seed ^ UINT64_C(0x9e3779b97f4a7c15));
        it->second->set_fault_injector(injector.get());
        injectors_.emplace(source_id, std::move(injector));
      }
      if (options_.collect_metrics) {
        it->second->set_observer(
            sink_->GetHistogram("net." + source_id + ".transfer_ms"),
            spans_, exec_span_id_, "xfer:" + source_id);
      }
    }
    return it->second.get();
  }

  void RecordError(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (error_.ok()) error_ = status;
  }

  Result<SourceWrapper*> WrapperFor(const std::string& source_id) {
    auto it = wrappers_.find(source_id);
    if (it == wrappers_.end()) {
      return Status::NotFound("no wrapper registered for source '" +
                              source_id + "'");
    }
    return it->second;
  }

  // One instrumented wrapper call: a "wrapper:<source>" span under
  // `parent_span` plus a per-source call-latency histogram.
  Status WrapperCall(SourceWrapper* w, const SubQuery& subquery,
                     net::DelayChannel* channel, RowQueue* out,
                     const CancellationToken& token, uint64_t parent_span) {
    obs::Span span(spans_, "wrapper:" + subquery.source_id, parent_span);
    Stopwatch watch;
    WrapperContext ctx;
    ctx.channel = channel;
    ctx.out = out;
    ctx.token = token;
    ctx.batch_size = batch_;
    Status st = w->Execute(subquery, ctx);
    if (options_.collect_metrics) {
      sink_->GetHistogram("wrapper." + subquery.source_id + ".call_ms")
          ->Record(watch.ElapsedMillis());
    }
    return st;
  }

  // --- fault-tolerant leaf execution -----------------------------------
  // Engaged only when the options ask for it; otherwise leaves run on the
  // exact historic direct-streaming path, so default behaviour (including
  // error propagation and answer streaming granularity) is unchanged.
  bool FaultTolerant() const {
    return options_.retry.enabled() ||
           options_.failure_mode == FailureMode::kBestEffort ||
           !options_.faults.empty();
  }

  void AddRecoveryEvent(std::string event) {
    std::lock_guard<std::mutex> lock(mu_);
    recovery_events_.push_back({clock_.ElapsedSeconds(), std::move(event)});
  }

  // One sub-query against one source under the retry policy. Every attempt
  // runs into a private staging queue and is forwarded to `sink` only on
  // success, so downstream operators never observe duplicate or torn
  // attempts. A closed `sink` (downstream satisfied) counts as success.
  Status ExecuteWithRetry(SourceWrapper* w, const SubQuery& subquery,
                          net::DelayChannel* channel, RowQueue* sink,
                          const CancellationToken& token, Rng* rng,
                          int* retries_out, uint64_t parent_span) {
    net::FaultInjector* injector = channel->fault_injector();
    return RunWithRetry(
        options_.retry, token, rng,
        [&](const CancellationToken& attempt_token) -> Status {
          RowQueue staging(static_cast<size_t>(1) << 30);
          if (injector != nullptr) {
            LAKEFED_RETURN_NOT_OK(injector->OnConnect(attempt_token));
          }
          LAKEFED_RETURN_NOT_OK(WrapperCall(w, subquery, channel, &staging,
                                            attempt_token, parent_span));
          // Wrappers stop quietly when their token fires; surface the
          // attempt timeout here so the retry loop can tell a retryable
          // per-attempt expiry from a clean completion.
          if (attempt_token.IsCancelled()) return attempt_token.ToStatus();
          staging.Close();
          std::vector<rdf::Binding> drained;
          while (staging.PopBatch(&drained, batch_, token) > 0) {
            if (!sink->PushBatch(&drained, token)) break;
          }
          return Status::OK();
        },
        retries_out);
  }

  // Runs one leaf sub-query with the full recovery ladder: retry against
  // its own source, then against each failover alternate (same molecule),
  // consulting the per-source circuit breakers throughout. Returns OK as
  // soon as any candidate completes; otherwise the last error.
  Status ExecuteLeafWithRecovery(const SubQuery& subquery,
                                 const std::vector<std::string>& alternates,
                                 RowQueue* sink,
                                 const CancellationToken& token,
                                 uint64_t parent_span) {
    std::vector<std::string> candidates;
    candidates.push_back(subquery.source_id);
    candidates.insert(candidates.end(), alternates.begin(), alternates.end());
    // Per-leaf jitter RNG, derived from the session seed and the leaf's
    // primary source so repeated sessions replay the same backoff schedule.
    uint64_t seed = options_.seed ^ UINT64_C(0x7fb5d329728ea185);
    for (char c : subquery.source_id) {
      seed = seed * 131 + static_cast<uint64_t>(c);
    }
    Rng rng(seed);
    BreakerRegistry* breakers = options_.breakers;
    Status last = Status::Unavailable("no candidate source attempted");
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (token.IsCancelled()) return token.ToStatus();
      const std::string& source = candidates[i];
      if (i > 0) {
        failovers_counter_->Increment();
        AddRecoveryEvent("failover " + subquery.source_id + " -> " + source +
                         " after: " + last.message());
      }
      if (breakers != nullptr && !breakers->AllowRequest(source)) {
        breaker_rejections_counter_->Increment();
        last = Status::Unavailable("circuit breaker open for source '" +
                                   source + "'");
        continue;
      }
      Result<SourceWrapper*> wrapper = WrapperFor(source);
      if (!wrapper.ok()) {
        last = wrapper.status();
        continue;
      }
      SubQuery sq = subquery;
      sq.source_id = source;
      net::DelayChannel* channel = ChannelFor(source);
      int retries = 0;
      Status st = ExecuteWithRetry(*wrapper, sq, channel, sink, token, &rng,
                                   &retries, parent_span);
      if (retries > 0) {
        retries_counter_->Increment(static_cast<uint64_t>(retries));
        local_metrics_.GetCounter("source." + source + ".retries")
            ->Increment(static_cast<uint64_t>(retries));
        AddRecoveryEvent("retried " + source + " x" +
                         std::to_string(retries));
      }
      if (st.ok()) {
        if (breakers != nullptr) breakers->OnSuccess(source);
        return st;
      }
      if (breakers != nullptr) {
        breakers->OnFailure(source);
        if (breakers->IsOpen(source)) {
          AddRecoveryEvent("breaker opened for " + source);
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        failed_sources_[source] = st.message();
      }
      last = st;
      if (token.IsCancelled()) return token.ToStatus();
    }
    return last;
  }

  // A leaf (or bind-join probe) was unrecoverable. Best-effort drops its
  // contribution and marks the answer partial; fail-fast surfaces the
  // error as the execution's status.
  void HandleLeafFailure(const Status& status, const CancellationToken& token) {
    if (options_.failure_mode == FailureMode::kBestEffort &&
        !token.IsCancelled()) {
      std::lock_guard<std::mutex> lock(mu_);
      degraded_ = true;
      return;
    }
    RecordError(status);
  }

  // A node's output queue plus its runtime recorder (null when metrics
  // collection is off, so instrumented and plain paths stay separable).
  struct NodeQueue {
    RowQueuePtr queue;
    std::shared_ptr<OpRuntimeRec> runtime;
  };

  // Creates a node's output queue with an operator-statistics counter (and,
  // when metrics are on, a queue-wait observer) attached — both before any
  // producer thread starts.
  NodeQueue MakeOutQueue(const FedPlanNode& node) {
    auto queue = std::make_shared<RowQueue>(kQueueCapacity);
    std::string label = node.Describe();
    if (size_t nl = label.find('\n'); nl != std::string::npos) {
      label = label.substr(0, nl);
    }
    auto counter = std::make_shared<std::atomic<uint64_t>>(0);
    queue->set_push_counter(counter);
    std::shared_ptr<OpRuntimeRec> runtime;
    if (options_.collect_metrics) {
      runtime = std::make_shared<OpRuntimeRec>(
          sink_->GetHistogram("queue.push_wait_ms"),
          sink_->GetHistogram("queue.pop_wait_ms"));
      queue->set_wait_observer(runtime);
    }
    // Leaf operators carry the source they scan, so the profiler can charge
    // that source's simulated network delay against them.
    std::string source_id;
    if (node.kind == FedPlanNode::Kind::kService ||
        node.kind == FedPlanNode::Kind::kDependentJoin) {
      source_id = node.subquery.source_id;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      operator_counters_.push_back({std::move(label), node.stats_key,
                                    node.estimated_rows, std::move(counter),
                                    std::move(source_id), runtime});
    }
    RegisterQueue(queue);
    return {std::move(queue), std::move(runtime)};
  }

  // Spawns the subtree rooted at `node`; returns its output queue.
  RowQueuePtr StartNode(const FedPlanNode& node) {
    switch (node.kind) {
      case FedPlanNode::Kind::kService: return StartService(node);
      case FedPlanNode::Kind::kJoin: return StartJoin(node);
      case FedPlanNode::Kind::kLeftJoin: return StartLeftJoin(node);
      case FedPlanNode::Kind::kDependentJoin: return StartDependentJoin(node);
      case FedPlanNode::Kind::kUnion: return StartUnion(node);
      case FedPlanNode::Kind::kFilter: return StartFilter(node);
      case FedPlanNode::Kind::kProject: return StartProject(node);
      case FedPlanNode::Kind::kOrderBy: return StartOrderBy(node);
      case FedPlanNode::Kind::kDistinct: return StartDistinct(node);
      case FedPlanNode::Kind::kLimit: return StartLimit(node);
    }
    auto q = std::make_shared<RowQueue>(kQueueCapacity);
    q->Close();
    return q;
  }

  RowQueuePtr StartService(const FedPlanNode& node) {
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    if (FaultTolerant()) {
      SubQuery subquery = node.subquery;
      std::vector<std::string> alternates = node.failover_sources;
      CancellationToken token = token_;
      threads_.emplace_back([this, subquery, alternates, out, rec, token] {
        obs::Span op(spans_, "service:" + subquery.source_id, exec_span_id_);
        WallTimer wall(rec);
        Status st = ExecuteLeafWithRecovery(subquery, alternates, out.get(),
                                            token, op.id());
        if (!st.ok()) HandleLeafFailure(st, token);
        out->Close();
      });
      return out;
    }
    auto wrapper = WrapperFor(node.subquery.source_id);
    if (!wrapper.ok()) {
      RecordError(wrapper.status());
      out->Close();
      return out;
    }
    SourceWrapper* w = *wrapper;
    net::DelayChannel* channel = ChannelFor(node.subquery.source_id);
    SubQuery subquery = node.subquery;
    CancellationToken token = token_;
    threads_.emplace_back([this, w, channel, subquery, out, rec, token] {
      obs::Span op(spans_, "service:" + subquery.source_id, exec_span_id_);
      WallTimer wall(rec);
      Status st = WrapperCall(w, subquery, channel, out.get(), token, op.id());
      if (!st.ok()) RecordError(st);
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartJoin(const FedPlanNode& node) {
    RowQueuePtr left = StartNode(*node.children[0]);
    RowQueuePtr right = StartNode(*node.children[1]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;

    // Tag-merge both inputs into one queue so the join thread can react to
    // whichever side delivers next (the adaptive part of agjoin).
    struct Tagged {
      int side;
      rdf::Binding row;
    };
    auto merged = std::make_shared<BlockingQueue<Tagged>>(kQueueCapacity);
    RegisterQueue(merged);
    auto active = std::make_shared<std::atomic<int>>(2);
    CancellationToken token = token_;
    const size_t batch = batch_;
    auto forward = [merged, active, token, batch](RowQueuePtr in, int side) {
      std::vector<rdf::Binding> rows;
      std::vector<Tagged> tagged;
      while (in->PopBatch(&rows, batch, token) > 0) {
        tagged.clear();
        tagged.reserve(rows.size());
        for (rdf::Binding& row : rows) tagged.push_back({side, std::move(row)});
        if (!merged->PushBatch(&tagged, token)) break;
      }
      in->Close();
      if (active->fetch_sub(1) == 1) merged->Close();
    };
    threads_.emplace_back(forward, left, 0);
    threads_.emplace_back(forward, right, 1);

    std::vector<std::string> join_vars = node.join_vars;
    threads_.emplace_back([this, merged, out, left, right, join_vars, rec,
                           token, batch] {
      obs::Span op(spans_, "join", exec_span_id_);
      WallTimer wall(rec);
      std::unordered_map<std::string, std::vector<rdf::Binding>> table[2];
      std::vector<Tagged> in_batch;
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool open = true;
      while (open && merged->PopBatch(&in_batch, batch, token) > 0) {
        for (Tagged& item : in_batch) {
          const int side = item.side;
          const rdf::Binding& row = item.row;
          if (!HasAllVars(row, join_vars)) continue;
          std::string key = JoinKey(row, join_vars);
          table[side][key].push_back(row);
          auto it = table[1 - side].find(key);
          if (it == table[1 - side].end()) continue;
          for (const rdf::Binding& other : it->second) {
            rdf::Binding merged_row = side == 0 ? MergeBindings(row, other)
                                                : MergeBindings(other, row);
            if (!writer.Add(std::move(merged_row))) {
              open = false;
              break;
            }
          }
          if (!open) break;
        }
        if (open) open = writer.Flush();
      }
      writer.Flush();
      merged->Close();
      left->Close();
      right->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartLeftJoin(const FedPlanNode& node) {
    // OPTIONAL semantics: the right side (the optional star) must complete
    // before unmatched left rows can be emitted, so the right input is
    // materialized into a hash table, then the left streams through.
    RowQueuePtr left = StartNode(*node.children[0]);
    RowQueuePtr right = StartNode(*node.children[1]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    std::vector<std::string> join_vars = node.join_vars;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, left, right, out, join_vars, rec, token,
                           batch] {
      obs::Span op(spans_, "leftjoin", exec_span_id_);
      WallTimer wall(rec);
      std::unordered_map<std::string, std::vector<rdf::Binding>> table;
      std::vector<rdf::Binding> rows;
      while (right->PopBatch(&rows, batch, token) > 0) {
        for (rdf::Binding& row : rows) {
          if (!HasAllVars(row, join_vars)) continue;
          table[JoinKey(row, join_vars)].push_back(std::move(row));
        }
      }
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool open = true;
      while (open && left->PopBatch(&rows, batch, token) > 0) {
        for (rdf::Binding& row : rows) {
          auto it = HasAllVars(row, join_vars)
                        ? table.find(JoinKey(row, join_vars))
                        : table.end();
          if (it == table.end() || it->second.empty()) {
            // No extension: keep the left row (left-outer semantics).
            if (!writer.Add(std::move(row))) {
              open = false;
              break;
            }
            continue;
          }
          for (const rdf::Binding& extension : it->second) {
            if (!writer.Add(MergeBindings(row, extension))) {
              open = false;
              break;
            }
          }
          if (!open) break;
        }
        if (open) open = writer.Flush();
      }
      left->Close();
      right->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartOrderBy(const FedPlanNode& node) {
    RowQueuePtr in = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    std::vector<sparql::OrderCondition> order_by = node.order_by;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, in, out, order_by, rec, token, batch] {
      obs::Span op(spans_, "orderby", exec_span_id_);
      WallTimer wall(rec);
      std::vector<rdf::Binding> rows;
      std::vector<rdf::Binding> in_batch;
      while (in->PopBatch(&in_batch, batch, token) > 0) {
        for (rdf::Binding& row : in_batch) rows.push_back(std::move(row));
      }
      std::stable_sort(
          rows.begin(), rows.end(),
          [&](const rdf::Binding& a, const rdf::Binding& b) {
            for (const sparql::OrderCondition& cond : order_by) {
              auto ita = a.find(cond.variable);
              auto itb = b.find(cond.variable);
              bool ba = ita != a.end(), bb = itb != b.end();
              int c;
              if (!ba && !bb) {
                c = 0;
              } else if (ba != bb) {
                c = ba ? 1 : -1;  // unbound sorts first
              } else {
                c = sparql::CompareTermsSparql(ita->second, itb->second);
              }
              if (c != 0) return cond.ascending ? c < 0 : c > 0;
            }
            return false;
          });
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      for (rdf::Binding& row : rows) {
        if (!writer.Add(std::move(row))) break;
      }
      writer.Flush();
      in->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartDependentJoin(const FedPlanNode& node) {
    RowQueuePtr left = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    auto wrapper = WrapperFor(node.subquery.source_id);
    if (!wrapper.ok()) {
      RecordError(wrapper.status());
      out->Close();
      return out;
    }
    SourceWrapper* w = *wrapper;
    net::DelayChannel* channel = ChannelFor(node.subquery.source_id);
    SubQuery subquery = node.subquery;
    std::vector<std::string> join_vars = node.join_vars;
    std::vector<std::string> failover = node.failover_sources;
    CancellationToken token = token_;

    const size_t batch = batch_;
    threads_.emplace_back([this, w, channel, subquery, join_vars, failover,
                           left, out, rec, token, batch] {
      obs::Span op(spans_, "depjoin:" + subquery.source_id, exec_span_id_);
      WallTimer wall(rec);
      const uint64_t op_span = op.id();
      const std::string& bind_var = join_vars.front();
      // Left rows accumulate into a probe window per instantiated
      // round trip. The window ramps from kDependentJoinBatch up to the
      // exchange morsel size: early answers still need only 64 left rows,
      // while long probes amortize the per-call cost (SQL translation +
      // inner scan) over up to batch_size instantiations. Windowing only
      // partitions the probe rows, so the join's binding multiset is
      // unchanged.
      size_t window = kDependentJoinBatch;
      const size_t max_window = std::max(batch, kDependentJoinBatch);
      std::vector<rdf::Binding> probe;
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool cancelled = false;

      auto flush = [&]() -> bool {
        if (probe.empty()) return true;
        if (token.IsCancelled()) return false;
        // Distinct instantiation terms for the bound variable.
        std::vector<rdf::Term> terms;
        std::unordered_set<std::string> seen;
        for (const rdf::Binding& row : probe) {
          auto it = row.find(bind_var);
          if (it == row.end()) continue;
          if (seen.insert(it->second.ToString()).second) {
            terms.push_back(it->second);
          }
        }
        SubQuery bound = subquery;
        bound.instantiations[bind_var] = std::move(terms);
        // Execute synchronously into a local queue large enough to never
        // block (we are the only consumer and drain afterwards).
        RowQueue local(static_cast<size_t>(1) << 30);
        Status st = FaultTolerant()
                        ? ExecuteLeafWithRecovery(bound, failover, &local,
                                                  token, op_span)
                        : WrapperCall(w, bound, channel, &local, token,
                                      op_span);
        if (!st.ok()) {
          if (FaultTolerant()) {
            HandleLeafFailure(st, token);
          } else {
            RecordError(st);
          }
          return false;
        }
        local.Close();
        std::unordered_map<std::string, std::vector<rdf::Binding>> right;
        std::vector<rdf::Binding> drained;
        while (local.PopBatch(&drained, batch, token) > 0) {
          for (rdf::Binding& row : drained) {
            if (!HasAllVars(row, join_vars)) continue;
            right[JoinKey(row, join_vars)].push_back(std::move(row));
          }
        }
        for (const rdf::Binding& lrow : probe) {
          if (!HasAllVars(lrow, join_vars)) continue;
          auto it = right.find(JoinKey(lrow, join_vars));
          if (it == right.end()) continue;
          for (const rdf::Binding& rrow : it->second) {
            if (!writer.Add(MergeBindings(lrow, rrow))) return false;
          }
        }
        probe.clear();
        return writer.Flush();
      };

      std::vector<rdf::Binding> in_rows;
      while (!cancelled && left->PopBatch(&in_rows, batch, token) > 0) {
        for (rdf::Binding& row : in_rows) {
          probe.push_back(std::move(row));
          if (probe.size() >= window) {
            if (!flush()) {
              cancelled = true;
              break;
            }
            window = std::min(window * 2, max_window);
          }
        }
      }
      if (!cancelled) flush();
      left->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartUnion(const FedPlanNode& node) {
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    auto active =
        std::make_shared<std::atomic<int>>(static_cast<int>(
            node.children.size()));
    CancellationToken token = token_;
    const size_t batch = batch_;
    for (const FedPlanPtr& child : node.children) {
      RowQueuePtr in = StartNode(*child);
      threads_.emplace_back([this, in, out, active, rec, token, batch] {
        obs::Span op(spans_, "union-arm", exec_span_id_);
        WallTimer wall(rec);
        std::vector<rdf::Binding> rows;
        while (in->PopBatch(&rows, batch, token) > 0) {
          if (!out->PushBatch(&rows, token)) break;
        }
        in->Close();
        if (active->fetch_sub(1) == 1) out->Close();
      });
    }
    return out;
  }

  RowQueuePtr StartFilter(const FedPlanNode& node) {
    RowQueuePtr in = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    std::vector<sparql::FilterExprPtr> filters = node.filters;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, in, out, filters, rec, token, batch] {
      obs::Span op(spans_, "filter", exec_span_id_);
      WallTimer wall(rec);
      std::vector<rdf::Binding> rows;
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool open = true;
      while (open && in->PopBatch(&rows, batch, token) > 0) {
        for (rdf::Binding& row : rows) {
          bool pass = true;
          for (const sparql::FilterExprPtr& f : filters) {
            Result<bool> r = f->EvalBool(row);
            // Evaluation errors (unbound variables, bad regex) reject the
            // solution, matching the reference evaluator.
            if (!r.ok() || !*r) {
              pass = false;
              break;
            }
          }
          if (pass && !writer.Add(std::move(row))) {
            open = false;
            break;
          }
        }
        if (open) open = writer.Flush();
      }
      in->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartProject(const FedPlanNode& node) {
    RowQueuePtr in = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    std::vector<std::string> projection = node.projection;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, in, out, projection, rec, token, batch] {
      obs::Span op(spans_, "project", exec_span_id_);
      WallTimer wall(rec);
      std::vector<rdf::Binding> rows;
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool open = true;
      while (open && in->PopBatch(&rows, batch, token) > 0) {
        for (rdf::Binding& row : rows) {
          rdf::Binding projected;
          for (const std::string& v : projection) {
            auto it = row.find(v);
            if (it != row.end()) projected.emplace(v, it->second);
          }
          if (!writer.Add(std::move(projected))) {
            open = false;
            break;
          }
        }
        if (open) open = writer.Flush();
      }
      in->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartDistinct(const FedPlanNode& node) {
    RowQueuePtr in = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, in, out, rec, token, batch] {
      obs::Span op(spans_, "distinct", exec_span_id_);
      WallTimer wall(rec);
      std::unordered_set<std::string> seen;
      std::vector<rdf::Binding> rows;
      BatchWriter<rdf::Binding> writer(out.get(), batch, token);
      bool open = true;
      while (open && in->PopBatch(&rows, batch, token) > 0) {
        for (rdf::Binding& row : rows) {
          std::string key;
          for (const auto& [var, term] : row) {
            key += var;
            key.push_back('\x02');
            key += term.ToString();
            key.push_back('\x01');
          }
          if (!seen.insert(key).second) continue;
          if (!writer.Add(std::move(row))) {
            open = false;
            break;
          }
        }
        if (open) open = writer.Flush();
      }
      in->Close();
      out->Close();
    });
    return out;
  }

  RowQueuePtr StartLimit(const FedPlanNode& node) {
    RowQueuePtr in = StartNode(*node.children[0]);
    NodeQueue nq = MakeOutQueue(node);
    RowQueuePtr out = nq.queue;
    std::shared_ptr<OpRuntimeRec> rec = nq.runtime;
    int64_t limit = node.limit;
    CancellationToken token = token_;
    const size_t batch = batch_;
    threads_.emplace_back([this, in, out, limit, rec, token, batch] {
      obs::Span op(spans_, "limit", exec_span_id_);
      WallTimer wall(rec);
      int64_t emitted = 0;
      std::vector<rdf::Binding> rows;
      while (emitted < limit) {
        // Capping the pop at the remaining budget keeps surplus rows in
        // the input queue, so exactly `limit` rows pass — no torn batch.
        const size_t want = std::min<size_t>(
            batch, static_cast<size_t>(limit - emitted));
        if (in->PopBatch(&rows, want, token) == 0) break;
        emitted += static_cast<int64_t>(rows.size());
        if (!out->PushBatch(&rows, token)) break;
      }
      in->Close();  // cancels upstream
      out->Close();
    });
    return out;
  }

  const std::map<std::string, SourceWrapper*>& wrappers_;
  PlanOptions options_;
  CancellationToken token_;
  // Morsel size of the exchange (>= 1; 1 = legacy row-at-a-time).
  const size_t batch_;
  // Batch being served row-by-row through the Next() shim.
  RowBatch pending_;
  size_t pending_pos_ = 0;
  RowQueuePtr root_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  Status error_;
  std::vector<std::function<void()>> closers_;
  std::map<std::string, std::unique_ptr<net::DelayChannel>> channels_;
  std::map<std::string, std::unique_ptr<net::FaultInjector>> injectors_;
  // Per-execution recovery counters (what ExecutionStats is derived from
  // at Finish — they must not be shared across a session's executions).
  // Also the fallback sink when no session registry is attached.
  obs::MetricsRegistry local_metrics_;
  // Where everything else is recorded: the session's registry (via
  // PlanOptions::metrics) when collection is on and one is attached, else
  // &local_metrics_. Local recovery counters are transferred over at
  // Finish with plain counter adds.
  obs::MetricsRegistry* sink_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* failovers_counter_ = nullptr;
  obs::Counter* breaker_rejections_counter_ = nullptr;
  obs::SpanRecorder* spans_ = nullptr;  // null when collection is off
  obs::Span exec_span_;
  uint64_t exec_span_id_ = 0;
  // Recovery accounting, guarded by mu_ while the dataflow runs.
  std::map<std::string, std::string> failed_sources_;
  std::vector<AnswerTrace::Event> recovery_events_;
  Stopwatch clock_;  // event timestamps, seconds since execution creation
  bool degraded_ = false;
  struct OperatorCounter {
    std::string label;
    std::string stats_key;  // feedback key; empty = no feedback
    double estimate;        // planner's estimate; -1 = none
    std::shared_ptr<std::atomic<uint64_t>> counter;
    std::string source_id;  // leaf operators: the source they scan
    std::shared_ptr<OpRuntimeRec> runtime;  // null when metrics are off
  };
  std::vector<OperatorCounter> operator_counters_;

  bool finished_ = false;
  Status final_status_;
  ExecutionStats stats_;
  std::vector<std::pair<std::string, uint64_t>> operator_rows_;
  std::vector<double> operator_estimates_;
  std::vector<obs::OperatorRuntime> operator_runtime_;
};

PlanExecution::PlanExecution(
    const std::map<std::string, SourceWrapper*>& wrappers,
    const PlanOptions& options, CancellationToken token)
    : impl_(std::make_unique<Impl>(wrappers, options, std::move(token))) {}

PlanExecution::~PlanExecution() = default;

void PlanExecution::Start(const FederatedPlan& plan) { impl_->Start(plan); }

bool PlanExecution::NextBatch(RowBatch* batch) {
  return impl_->NextBatch(batch);
}

std::optional<rdf::Binding> PlanExecution::Next() { return impl_->Next(); }

Status PlanExecution::Finish() { return impl_->Finish(); }

const ExecutionStats& PlanExecution::stats() const { return impl_->stats(); }

const std::vector<std::pair<std::string, uint64_t>>&
PlanExecution::operator_rows() const {
  return impl_->operator_rows();
}

const std::vector<double>& PlanExecution::operator_estimates() const {
  return impl_->operator_estimates();
}

const std::vector<obs::OperatorRuntime>& PlanExecution::operator_runtime()
    const {
  return impl_->operator_runtime();
}

const std::vector<AnswerTrace::Event>& PlanExecution::trace_events() const {
  return impl_->trace_events();
}

obs::MetricsSnapshot PlanExecution::metrics_snapshot() const {
  return impl_->metrics_snapshot();
}

void ExecutionStats::MergeFrom(const ExecutionStats& other) {
  messages_transferred += other.messages_transferred;
  network_delay_ms += other.network_delay_ms;
  source_rows += other.source_rows;
  for (const auto& [source, b] : other.per_source) {
    SourceBreakdown& mine = per_source[source];
    mine.rows += b.rows;
    mine.messages += b.messages;
    mine.delay_ms += b.delay_ms;
    mine.retries += b.retries;
  }
  retries += other.retries;
  failovers += other.failovers;
  faults_injected += other.faults_injected;
  breaker_rejections += other.breaker_rejections;
  for (const auto& [source, error] : other.failed_sources) {
    failed_sources[source] = error;
  }
  recovery_events.insert(recovery_events.end(), other.recovery_events.begin(),
                         other.recovery_events.end());
  partial = partial || other.partial;
}

std::string QueryAnswer::OperatorStatsText() const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < operator_rows.size(); ++i) {
    const auto& [label, rows] = operator_rows[i];
    std::snprintf(buf, sizeof(buf), "%10llu  ",
                  static_cast<unsigned long long>(rows));
    out += buf;
    out += label;
    if (i < operator_estimates.size() && operator_estimates[i] >= 0.0) {
      std::snprintf(buf, sizeof(buf), "  [est≈%lld]",
                    static_cast<long long>(operator_estimates[i]));
      out += buf;
    }
    out.push_back('\n');
  }
  if (!stats.per_source.empty()) {
    out += "per-source traffic:\n";
    for (const auto& [source, b] : stats.per_source) {
      std::snprintf(buf, sizeof(buf), "%10llu rows  %10llu msgs  %10.2f ms  ",
                    static_cast<unsigned long long>(b.rows),
                    static_cast<unsigned long long>(b.messages), b.delay_ms);
      out += buf;
      out += source;
      if (b.retries > 0) {
        out += "  (" + std::to_string(b.retries) + " retries)";
      }
      out.push_back('\n');
    }
  }
  // Recovery section: rendered only when the fault-tolerance layer acted,
  // so fault-free output is byte-identical to the historic format.
  if (stats.retries > 0 || stats.failovers > 0 || stats.faults_injected > 0 ||
      stats.breaker_rejections > 0 || stats.partial ||
      !stats.failed_sources.empty()) {
    out += "recovery: " + std::to_string(stats.retries) + " retries  " +
           std::to_string(stats.failovers) + " failovers  " +
           std::to_string(stats.faults_injected) + " faults injected  " +
           std::to_string(stats.breaker_rejections) + " breaker rejections";
    if (stats.partial) out += "  (partial answer)";
    out.push_back('\n');
    for (const auto& [source, error] : stats.failed_sources) {
      out += "  failed source " + source + ": " + error + "\n";
    }
  }
  return out;
}

Result<QueryAnswer> ExecutePlan(
    const FederatedPlan& plan,
    const std::map<std::string, SourceWrapper*>& wrappers,
    const PlanOptions& options, CancellationToken token) {
  QueryAnswer answer;
  answer.variables = plan.variables;
  answer.plan_text = plan.Explain();

  Stopwatch stopwatch;
  PlanExecution execution(wrappers, options, std::move(token));
  execution.Start(plan);
  RowBatch batch;
  while (execution.NextBatch(&batch)) {
    // All rows of a morsel became available to the client together, so they
    // share one arrival timestamp in the answer trace.
    const double now = stopwatch.ElapsedSeconds();
    for (rdf::Binding& row : batch.rows) {
      answer.trace.timestamps.push_back(now);
      answer.rows.push_back(std::move(row));
    }
  }
  answer.trace.completion_seconds = stopwatch.ElapsedSeconds();

  LAKEFED_RETURN_NOT_OK(execution.Finish());
  answer.trace.events = execution.trace_events();
  answer.stats = execution.stats();
  answer.operator_rows = execution.operator_rows();
  answer.operator_estimates = execution.operator_estimates();
  answer.operator_runtime = execution.operator_runtime();
  if (options.collect_metrics) {
    answer.metrics_json = execution.metrics_snapshot().ToJson();
  }
  return answer;
}

}  // namespace lakefed::fed
