// Streaming query sessions: the incremental, cancellable form of the
// engine's API. A QueryRequest (text or pre-parsed query + options +
// optional deadline) becomes a ResultStream via
// FederatedEngine::CreateSession; the stream yields solution mappings as
// the sources deliver them, can be cancelled at any time from any thread,
// and reports the terminal Status plus the execution's AnswerTrace and
// ExecutionStats once finished.
//
// Relationship to the blocking API: FederatedEngine::Execute and
// ExecuteParsed are thin shims that create a session and Drain() it, so a
// QueryAnswer is exactly "a fully consumed ResultStream".

#ifndef LAKEFED_FED_SESSION_H_
#define LAKEFED_FED_SESSION_H_

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "fed/executor.h"
#include "fed/options.h"
#include "mapping/rdf_mt.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/span.h"
#include "sparql/ast.h"

namespace lakefed::fed {

// Everything needed to start one query session. Either `parsed` (takes
// precedence) or `query` (SPARQL text, parsed at session creation) supplies
// the query. `timeout`, when set, becomes a deadline on the session's
// cancellation token: past it the stream terminates with kDeadlineExceeded,
// tearing down all source scans.
struct QueryRequest {
  std::string query;
  std::optional<sparql::SelectQuery> parsed;
  PlanOptions options;
  std::optional<std::chrono::milliseconds> timeout;

  static QueryRequest Text(std::string sparql, PlanOptions options = {}) {
    QueryRequest request;
    request.query = std::move(sparql);
    request.options = std::move(options);
    return request;
  }
  static QueryRequest Parsed(sparql::SelectQuery query,
                             PlanOptions options = {}) {
    QueryRequest request;
    request.parsed = std::move(query);
    request.options = std::move(options);
    return request;
  }
};

// A live query execution. Created by FederatedEngine::CreateSession; the
// dataflow (wrapper/operator threads) is already running when the stream is
// handed out, so Next() simply pulls from the plan's root queue.
//
// Two internal modes, chosen from the query shape:
//  * streaming — plain queries and pure UNIONs: rows surface incrementally
//    while sources are still delivering (UNION branches run sequentially on
//    one clock).
//  * buffered — aggregates, and UNIONs under ORDER BY / DISTINCT / LIMIT:
//    these are blocking by nature, so the first Next() materializes the
//    whole answer at the mediator (still cancellable cooperatively) and the
//    rows stream out of the buffer.
//
// Threading: Next(), Finish() and Drain() belong to one consumer thread;
// Cancel() may be called concurrently from any thread. trace()/stats()/
// operator_rows() are stable once Finish() returned.
class ResultStream {
 public:
  ~ResultStream();  // cancels if not fully consumed, joins all threads

  ResultStream(const ResultStream&) = delete;
  ResultStream& operator=(const ResultStream&) = delete;

  // Pulls the next morsel of solution mappings into `*batch` (the primary
  // pull API: up to PlanOptions::batch_size rows that became available
  // together). Blocks until at least one row is available. Returns false at
  // end-of-stream — completion, error, cancellation or deadline expiry;
  // Finish() discriminates.
  bool NextBatch(RowBatch* batch);

  // Row-at-a-time compatibility shim over NextBatch(): serves rows from an
  // internal pending batch, refilling as needed. May be interleaved freely
  // with NextBatch() (pending rows are served first). Returns false at
  // end-of-stream.
  bool Next(rdf::Binding* row);

  // Requests cooperative cancellation: every queue of the dataflow closes
  // and mid-delay network transfers wake, so source scans unwind promptly.
  // Safe from any thread, idempotent.
  void Cancel();

  // Tears the session down (joining every thread) and returns the terminal
  // status: OK for a fully drained stream, the first wrapper/operator error,
  // kCancelled after Cancel(), kDeadlineExceeded after an expired deadline.
  // Calling Finish() on a stream that still has rows pending cancels it.
  // Idempotent.
  Status Finish();

  // Convenience: consumes the rest of the stream into a QueryAnswer and
  // Finish()es. The blocking Execute shims are implemented with this.
  Result<QueryAnswer> Drain();

  // Projection of the result rows. Valid from creation.
  const std::vector<std::string>& variables() const { return variables_; }

  // Arrival timestamps of the rows delivered so far (the paper's answer
  // trace); completion_seconds is set once the stream ends.
  const AnswerTrace& trace() const { return trace_; }

  // Source/network statistics of the work actually performed — partial
  // results of a cancelled or expired session are reported faithfully.
  // Complete after Finish().
  const ExecutionStats& stats() const { return stats_; }

  // EXPLAIN text of the executed plan(s). For UNIONs, branch plans append
  // as they start.
  const std::string& plan_text() const { return plan_text_; }

  // Rows emitted per operator, in spawn order. Complete after Finish().
  const std::vector<std::pair<std::string, uint64_t>>& operator_rows() const {
    return operator_rows_;
  }

  // Planner cardinality estimates parallel to operator_rows() (-1 where no
  // estimate exists, e.g. cost model off). Complete after Finish().
  const std::vector<double>& operator_estimates() const {
    return operator_estimates_;
  }

  // Per-operator runtime accounting (thread wall time, output-queue waits,
  // occupancy) parallel to operator_rows(). Default-valued entries when
  // collect_metrics is off. Complete after Finish().
  const std::vector<obs::OperatorRuntime>& operator_runtime() const {
    return operator_runtime_;
  }

  // EXPLAIN ANALYZE of the finished session: joins operator_rows(),
  // operator_estimates() (as q-errors), operator_runtime(), the per-source
  // traffic and the span tree into one QueryProfile. Call after Finish()
  // (or Drain()); render with ToText() / ToJson().
  obs::QueryProfile profile() const;

  // The session's cancellation token (shared with every operator thread).
  CancellationToken token() const { return token_; }

  // The session's span recorder (parse -> plan -> execute -> wrapper ->
  // network transfer), or nullptr when collect_metrics is off. The tree is
  // complete after Finish().
  const obs::SpanRecorder* spans() const { return spans_.get(); }

  // Stable-JSON snapshot of the session's metrics registry; empty string
  // when collect_metrics is off. Complete after Finish().
  const std::string& metrics_json() const { return metrics_json_; }

 private:
  friend class FederatedEngine;

  ResultStream(const mapping::RdfMtCatalog& catalog,
               const std::map<std::string, SourceWrapper*>& wrappers,
               sparql::SelectQuery query, PlanOptions options,
               CancellationToken token);

  // Plans the first branch and spawns its dataflow (streaming mode) or
  // records the buffered-mode pending state. Returns the creation error, if
  // any; called by FederatedEngine::CreateSession. `spans` (may be null)
  // transfers ownership of the session's span recorder with `session_span`
  // as its root; `engine_metrics` (may be null) receives the session's
  // metrics at Finish().
  static Result<std::unique_ptr<ResultStream>> Create(
      const mapping::RdfMtCatalog& catalog,
      const std::map<std::string, SourceWrapper*>& wrappers,
      sparql::SelectQuery query, PlanOptions options, CancellationToken token,
      std::unique_ptr<obs::SpanRecorder> spans = nullptr,
      uint64_t session_span = 0,
      obs::MetricsRegistry* engine_metrics = nullptr);

  bool NextBatchStreaming(RowBatch* batch);
  bool NextBatchBuffered(RowBatch* batch);
  // Plans one branch query: consults the plan cache first when the session
  // opted in (PlanOptions::plan_cache), else — and on every miss — runs
  // BuildPlan. The returned plan is immutable and possibly shared with
  // concurrent sessions; the session keeps the shared_ptr alive while its
  // dataflow runs (active_plan_).
  Result<std::shared_ptr<const FederatedPlan>> PlanBranch(
      const sparql::SelectQuery& branch);
  // Plans branches_[branch_index_] and starts its dataflow.
  Status StartBranch();
  // Folds a finished PlanExecution's statistics into the session's.
  void AccumulateExecution();
  // The blocking evaluation used in buffered mode (aggregates at the
  // mediator; UNION merge under solution modifiers).
  Result<QueryAnswer> RunBlocking(const sparql::SelectQuery& query);

  const mapping::RdfMtCatalog& catalog_;
  const std::map<std::string, SourceWrapper*>& wrappers_;
  sparql::SelectQuery query_;
  PlanOptions options_;
  CancellationToken token_;

  bool buffered_ = false;
  std::vector<sparql::SelectQuery> branches_;  // streaming mode
  size_t branch_index_ = 0;
  std::unique_ptr<PlanExecution> execution_;
  // The plan the current execution runs on — kept alive here because plan-
  // cache hits share one immutable plan across sessions.
  std::shared_ptr<const FederatedPlan> active_plan_;
  Stopwatch stopwatch_;
  double branch_start_s_ = 0;  // session time the current branch started

  bool buffered_ran_ = false;  // buffered mode
  std::vector<rdf::Binding> buffered_rows_;
  size_t buffered_cursor_ = 0;

  // Pending batch backing the row-at-a-time Next() shim.
  RowBatch shim_pending_;
  size_t shim_pos_ = 0;

  std::vector<std::string> variables_;
  AnswerTrace trace_;
  ExecutionStats stats_;
  std::string plan_text_;
  std::vector<std::pair<std::string, uint64_t>> operator_rows_;
  std::vector<double> operator_estimates_;
  std::vector<obs::OperatorRuntime> operator_runtime_;

  // Observability: the session owns its metrics registry and span recorder;
  // PlanOptions::metrics/spans point into them for every plan/execution of
  // the session. Both are null when collect_metrics is off.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::SpanRecorder> spans_;
  uint64_t session_span_ = 0;                     // root span id
  obs::MetricsRegistry* engine_metrics_ = nullptr;  // merge target (not owned)
  std::string metrics_json_;

  bool ended_ = false;          // Next() hit end-of-stream
  bool fully_drained_ = false;  // ended by completion, not error/cancel
  bool finished_ = false;       // Finish() ran
  Status status_;
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_SESSION_H_
