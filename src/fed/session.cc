#include "fed/session.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <set>

#include "fed/breaker.h"
#include "fed/cache.h"
#include "fed/fingerprint.h"
#include "fed/planner.h"
#include "obs/querylog.h"
#include "sparql/aggregate.h"
#include "sparql/filter_expr.h"
#include "stats/stats_catalog.h"

namespace lakefed::fed {

namespace {

// Short stable digest of a cache key for query-log record identity
// (FNV-1a 64, hex). Repeats of the same normalized query + plan-shaping
// options share a fingerprint, so log records group by query template.
std::string ShortDigest(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

ResultStream::ResultStream(const mapping::RdfMtCatalog& catalog,
                           const std::map<std::string, SourceWrapper*>& wrappers,
                           sparql::SelectQuery query, PlanOptions options,
                           CancellationToken token)
    : catalog_(catalog),
      wrappers_(wrappers),
      query_(std::move(query)),
      options_(std::move(options)),
      token_(std::move(token)) {}

ResultStream::~ResultStream() { Finish(); }

Result<std::unique_ptr<ResultStream>> ResultStream::Create(
    const mapping::RdfMtCatalog& catalog,
    const std::map<std::string, SourceWrapper*>& wrappers,
    sparql::SelectQuery query, PlanOptions options, CancellationToken token,
    std::unique_ptr<obs::SpanRecorder> spans, uint64_t session_span,
    obs::MetricsRegistry* engine_metrics) {
  std::unique_ptr<ResultStream> stream(
      new ResultStream(catalog, wrappers, std::move(query), std::move(options),
                       std::move(token)));
  stream->spans_ = std::move(spans);
  stream->session_span_ = session_span;
  stream->engine_metrics_ = engine_metrics;
  if (stream->options_.collect_metrics) {
    stream->metrics_ = std::make_unique<obs::MetricsRegistry>();
    stream->options_.metrics = stream->metrics_.get();
    stream->options_.spans = stream->spans_.get();
    stream->options_.parent_span = session_span;
  } else {
    stream->options_.metrics = nullptr;
    stream->options_.spans = nullptr;
  }
  const sparql::SelectQuery& q = stream->query_;

  // Aggregates group the merged solutions at the mediator: inherently
  // blocking, so the session runs buffered.
  if (q.HasAggregates()) {
    stream->buffered_ = true;
    stream->variables_ = q.EffectiveProjection();
    return stream;
  }

  stream->branches_ = sparql::ExpandUnions(q);
  if (stream->branches_.size() > 1) {
    const bool modifiers =
        !q.order_by.empty() || q.distinct || q.limit.has_value();
    if (modifiers) {
      // ORDER BY / DISTINCT / LIMIT apply across the merged branches, so
      // the union cannot stream: run buffered.
      stream->buffered_ = true;
      stream->variables_ = q.EffectiveProjection();
      stream->branches_.clear();
      return stream;
    }
    // Pure bag union: branches stream sequentially on one clock.
    stream->variables_ = q.EffectiveProjection();
    for (sparql::SelectQuery& branch : stream->branches_) {
      branch.variables = stream->variables_;
    }
  }

  // Streaming mode: plan and spawn the first branch now, so creation
  // errors surface here and the dataflow is already running when the
  // stream is handed out.
  LAKEFED_RETURN_NOT_OK(stream->StartBranch());
  return stream;
}

Result<std::shared_ptr<const FederatedPlan>> ResultStream::PlanBranch(
    const sparql::SelectQuery& branch) {
  PlanCache* cache = options_.plan_cache ? options_.plans : nullptr;
  if (cache == nullptr) {
    LAKEFED_ASSIGN_OR_RETURN(
        FederatedPlan plan, BuildPlan(branch, catalog_, wrappers_, options_));
    return std::make_shared<const FederatedPlan>(std::move(plan));
  }
  // Stamp *before* planning: a concurrent epoch bump mid-plan then makes
  // the inserted entry look stale (re-planned on its next use) rather than
  // wrongly fresh.
  EpochStamp stamp;
  stamp.structural = cache->structural_epoch();
  if (options_.stats_catalog != nullptr) {
    stamp.stats = options_.stats_catalog->epoch();
  }
  if (options_.breakers != nullptr) {
    stamp.routing = options_.breakers->routing_epoch();
  }
  const std::string key = FingerprintQuery(branch, options_).CacheKey();
  if (std::shared_ptr<const FederatedPlan> hit = cache->Lookup(key, stamp)) {
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter("cache.plan.hit")->Increment();
    }
    // The marker span stands in for the plan/decompose/source-select
    // phases the hit skipped.
    obs::Span span(options_.spans, "plan-cache", options_.parent_span);
    return hit;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("cache.plan.miss")->Increment();
  }
  LAKEFED_ASSIGN_OR_RETURN(FederatedPlan plan,
                           BuildPlan(branch, catalog_, wrappers_, options_));
  auto shared = std::make_shared<const FederatedPlan>(std::move(plan));
  cache->Insert(key, options_.cache_scope, shared, stamp);
  return shared;
}

Status ResultStream::StartBranch() {
  branch_start_s_ = stopwatch_.ElapsedSeconds();
  LAKEFED_ASSIGN_OR_RETURN(std::shared_ptr<const FederatedPlan> plan,
                           PlanBranch(branches_[branch_index_]));
  if (branch_index_ == 0 && branches_.size() == 1) {
    variables_ = plan->variables;
  }
  plan_text_ += plan->Explain();
  active_plan_ = plan;
  execution_ = std::make_unique<PlanExecution>(wrappers_, options_, token_);
  execution_->Start(*plan);
  return Status::OK();
}

void ResultStream::AccumulateExecution() {
  stats_.MergeFrom(execution_->stats());
  // Branch executions keep event times relative to their own start; shift
  // them onto the session clock (branches run sequentially).
  for (const AnswerTrace::Event& event : execution_->trace_events()) {
    trace_.events.push_back({branch_start_s_ + event.time_s, event.label});
  }
  const auto& ops = execution_->operator_rows();
  operator_rows_.insert(operator_rows_.end(), ops.begin(), ops.end());
  const auto& ests = execution_->operator_estimates();
  operator_estimates_.insert(operator_estimates_.end(), ests.begin(),
                             ests.end());
  const auto& runtime = execution_->operator_runtime();
  operator_runtime_.insert(operator_runtime_.end(), runtime.begin(),
                           runtime.end());
}

bool ResultStream::NextBatch(RowBatch* batch) {
  batch->clear();
  // Serve the remainder of the Next() shim's pending batch first, so the
  // two pull APIs interleave without losing or reordering rows.
  if (shim_pos_ < shim_pending_.size()) {
    batch->rows.assign(
        std::make_move_iterator(shim_pending_.rows.begin() +
                                static_cast<ptrdiff_t>(shim_pos_)),
        std::make_move_iterator(shim_pending_.rows.end()));
    shim_pending_.clear();
    shim_pos_ = 0;
    return true;
  }
  if (ended_ || finished_) return false;
  return buffered_ ? NextBatchBuffered(batch) : NextBatchStreaming(batch);
}

bool ResultStream::Next(rdf::Binding* row) {
  if (shim_pos_ >= shim_pending_.size()) {
    shim_pending_.clear();
    shim_pos_ = 0;
    if (ended_ || finished_) return false;
    const bool ok = buffered_ ? NextBatchBuffered(&shim_pending_)
                              : NextBatchStreaming(&shim_pending_);
    if (!ok) return false;
  }
  *row = std::move(shim_pending_.rows[shim_pos_]);
  ++shim_pos_;
  return true;
}

bool ResultStream::NextBatchStreaming(RowBatch* batch) {
  for (;;) {
    if (execution_ != nullptr && execution_->NextBatch(batch)) {
      // The whole morsel became available to the client together: its rows
      // share one arrival timestamp in the answer trace.
      const double now = stopwatch_.ElapsedSeconds();
      trace_.timestamps.insert(trace_.timestamps.end(), batch->size(), now);
      return true;
    }
    // Current branch exhausted (completed, errored or cancelled).
    trace_.completion_seconds = stopwatch_.ElapsedSeconds();
    if (execution_ != nullptr) {
      Status branch_status = execution_->Finish();
      AccumulateExecution();
      execution_.reset();
      if (!branch_status.ok()) {
        status_ = branch_status;
        ended_ = true;
        return false;
      }
    }
    ++branch_index_;
    if (branch_index_ >= branches_.size()) {
      ended_ = true;
      fully_drained_ = true;
      return false;
    }
    Status start_status = StartBranch();
    if (!start_status.ok()) {
      status_ = start_status;
      ended_ = true;
      return false;
    }
  }
}

bool ResultStream::NextBatchBuffered(RowBatch* batch) {
  if (!buffered_ran_) {
    buffered_ran_ = true;
    Result<QueryAnswer> answer = RunBlocking(query_);
    if (!answer.ok()) {
      status_ = answer.status();
      ended_ = true;
      return false;
    }
    variables_ = std::move(answer->variables);
    buffered_rows_ = std::move(answer->rows);
    trace_ = std::move(answer->trace);
    stats_ = answer->stats;
    plan_text_ = std::move(answer->plan_text);
    operator_rows_ = std::move(answer->operator_rows);
    operator_estimates_ = std::move(answer->operator_estimates);
    operator_runtime_ = std::move(answer->operator_runtime);
  }
  if (token_.IsCancelled()) {
    status_ = token_.ToStatus();
    ended_ = true;
    return false;
  }
  if (buffered_cursor_ >= buffered_rows_.size()) {
    ended_ = true;
    fully_drained_ = true;
    return false;
  }
  // Serve the next batch_size-slice of the materialized answer.
  const size_t take = std::min(std::max<size_t>(1, options_.batch_size),
                               buffered_rows_.size() - buffered_cursor_);
  batch->rows.assign(
      std::make_move_iterator(buffered_rows_.begin() +
                              static_cast<ptrdiff_t>(buffered_cursor_)),
      std::make_move_iterator(buffered_rows_.begin() +
                              static_cast<ptrdiff_t>(buffered_cursor_ + take)));
  buffered_cursor_ += take;
  return true;
}

void ResultStream::Cancel() {
  if (token_.can_cancel()) token_.Cancel();
}

Status ResultStream::Finish() {
  if (finished_) return status_;
  finished_ = true;
  if (!ended_) {
    // Abandoned mid-stream: tear the dataflow down cooperatively before
    // joining, so producers blocked on full queues unwind.
    if (token_.can_cancel() && !token_.IsCancelled()) token_.Cancel();
    if (!buffered_ && trace_.completion_seconds == 0) {
      trace_.completion_seconds = stopwatch_.ElapsedSeconds();
    }
  }
  if (execution_ != nullptr) {
    Status terminal = execution_->Finish();
    AccumulateExecution();
    execution_.reset();
    if (status_.ok()) status_ = terminal;
  }
  if (status_.ok() && !fully_drained_) status_ = token_.ToStatus();
  // Seal the session's observability: session-level instruments, the root
  // span, the JSON export, and the fold into the engine-wide registry.
  const double total_ms = stopwatch_.ElapsedMillis();
  bool plan_cache_hit = false;
  if (spans_ != nullptr) spans_->EndSpan(session_span_);
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("session.query_ms")->Record(total_ms);
    metrics_->GetCounter("session.rows")
        ->Increment(trace_.timestamps.size());
    if (!status_.ok()) metrics_->GetCounter("session.errors")->Increment();
    // Surface span loss: a truncated span tree would silently distort any
    // profile or trace built from it, so the drop count rides along in the
    // metrics snapshot.
    if (spans_ != nullptr && spans_->dropped() > 0) {
      metrics_->GetGauge("obs.spans.dropped")
          ->Set(static_cast<int64_t>(spans_->dropped()));
    }
    obs::MetricsSnapshot snapshot = metrics_->Snapshot();
    metrics_json_ = snapshot.ToJson();
    if (engine_metrics_ != nullptr) engine_metrics_->Merge(snapshot);
    const obs::MetricsSnapshot::CounterValue* hit =
        snapshot.FindCounter("cache.plan.hit");
    plan_cache_hit = hit != nullptr && hit->value > 0;
  }
  if (engine_metrics_ != nullptr) {
    engine_metrics_
        ->GetCounter(status_.ok() ? "engine.queries_ok"
                                  : "engine.queries_error")
        ->Increment();
  }
  // Flight recorder: one completion record per session, with the full
  // profile + span tree captured for slow/partial/error queries. Null
  // query_log (the default) skips everything — no fingerprinting, no
  // record, bit-identical to an engine without the log.
  if (options_.query_log != nullptr) {
    obs::QueryLog* log = options_.query_log;
    obs::QueryLogRecord record;
    const QueryFingerprint fp = FingerprintQuery(query_, options_);
    record.query = fp.canonical;
    record.fingerprint = ShortDigest(fp.CacheKey());
    record.tenant =
        options_.tenant.empty() ? options_.cache_scope : options_.tenant;
    record.ok = status_.ok();
    record.status = status_.ok() ? "ok" : status_.ToString();
    record.partial = stats_.partial;
    record.total_ms = total_ms;
    record.first_row_ms =
        trace_.timestamps.empty() ? -1 : trace_.timestamps.front() * 1000.0;
    record.network_delay_ms = stats_.network_delay_ms;
    record.rows = trace_.timestamps.size();
    record.retries = stats_.retries;
    record.failovers = stats_.failovers;
    record.hedges_fired = stats_.hedges_fired;
    record.hedge_wins = stats_.hedge_wins;
    record.breaker_rejections = stats_.breaker_rejections;
    record.sub_answer_hits = stats_.sub_answer_hits;
    record.sub_answer_misses = stats_.sub_answer_misses;
    record.plan_cache_hit = plan_cache_hit;
    record.slow = total_ms >= log->config().slow_ms;
    if (log->ShouldCapture(total_ms, record.ok, record.partial)) {
      record.profile_json = profile().ToJson();
      if (spans_ != nullptr) record.spans_json = spans_->ToJson();
    }
    log->Record(std::move(record));
  }
  return status_;
}

obs::QueryProfile ResultStream::profile() const {
  obs::QueryProfileInputs in;
  in.labels.reserve(operator_rows_.size());
  in.rows.reserve(operator_rows_.size());
  for (const auto& [label, rows] : operator_rows_) {
    in.labels.push_back(label);
    in.rows.push_back(rows);
  }
  in.estimates = operator_estimates_;
  in.runtime = operator_runtime_;
  for (const auto& [source, b] : stats_.per_source) {
    obs::QueryProfileInputs::SourceTraffic traffic;
    traffic.rows = b.rows;
    traffic.messages = b.messages;
    traffic.retries = b.retries;
    traffic.delay_ms = b.delay_ms;
    in.per_source.emplace(source, traffic);
  }
  if (spans_ != nullptr) in.spans = spans_->Snapshot();
  in.total_s = trace_.completion_seconds;
  in.first_s = trace_.timestamps.empty() ? -1 : trace_.timestamps.front();
  in.answer_rows = trace_.timestamps.size();
  in.status = status_.ok() ? "ok" : status_.ToString();
  return obs::BuildQueryProfile(in);
}

Result<QueryAnswer> ResultStream::Drain() {
  QueryAnswer answer;
  RowBatch batch;
  while (NextBatch(&batch)) {
    answer.rows.insert(answer.rows.end(),
                       std::make_move_iterator(batch.rows.begin()),
                       std::make_move_iterator(batch.rows.end()));
  }
  LAKEFED_RETURN_NOT_OK(Finish());
  answer.variables = variables_;
  answer.trace = trace_;
  answer.stats = stats_;
  answer.plan_text = plan_text_;
  answer.operator_rows = operator_rows_;
  answer.operator_estimates = operator_estimates_;
  answer.operator_runtime = operator_runtime_;
  answer.metrics_json = metrics_json_;
  return answer;
}

Result<QueryAnswer> ResultStream::RunBlocking(
    const sparql::SelectQuery& original) {
  // Aggregates always run at the mediator: execute the aggregate-free inner
  // query federated, then group the merged solutions here.
  if (original.HasAggregates()) {
    sparql::SelectQuery inner = original;
    inner.aggregates.clear();
    inner.group_by.clear();
    inner.order_by.clear();
    inner.limit.reset();
    inner.distinct = false;
    inner.select_all = false;
    bool count_star = false;
    std::set<std::string> needed(original.group_by.begin(),
                                 original.group_by.end());
    for (const sparql::SelectAggregate& agg : original.aggregates) {
      if (agg.var.empty()) {
        count_star = true;
      } else {
        needed.insert(agg.var);
      }
    }
    inner.variables =
        count_star ? original.PatternVariables()
                   : std::vector<std::string>(needed.begin(), needed.end());
    if (inner.variables.empty()) {
      inner.variables = original.PatternVariables();
    }
    LAKEFED_ASSIGN_OR_RETURN(QueryAnswer base, RunBlocking(inner));
    QueryAnswer answer;
    answer.variables = original.EffectiveProjection();
    answer.plan_text = base.plan_text + "-> EngineAggregate (GROUP BY at "
                                        "the mediator)\n";
    answer.stats = base.stats;
    answer.operator_rows = std::move(base.operator_rows);
    answer.operator_estimates = std::move(base.operator_estimates);
    answer.operator_runtime = std::move(base.operator_runtime);
    std::vector<rdf::Binding> aggregated = sparql::AggregateSolutions(
        base.rows, original.group_by, original.aggregates);
    sparql::SortBindings(&aggregated, original.order_by);
    if (original.distinct) {
      std::set<std::string> seen;
      std::vector<rdf::Binding> rows;
      for (rdf::Binding& row : aggregated) {
        std::string key;
        for (const std::string& var : answer.variables) {
          auto it = row.find(var);
          key += it == row.end() ? std::string("~") : it->second.ToString();
          key.push_back('\x01');
        }
        if (seen.insert(key).second) rows.push_back(std::move(row));
      }
      aggregated = std::move(rows);
    }
    if (original.limit.has_value() &&
        aggregated.size() > static_cast<size_t>(*original.limit)) {
      aggregated.resize(static_cast<size_t>(*original.limit));
    }
    answer.rows = std::move(aggregated);
    // Aggregation is blocking: all answers materialize at completion time.
    answer.trace.completion_seconds = base.trace.completion_seconds;
    answer.trace.timestamps.assign(answer.rows.size(),
                                   base.trace.completion_seconds);
    answer.operator_rows.emplace_back("EngineAggregate",
                                      answer.rows.size());
    answer.operator_estimates.push_back(-1.0);
    answer.operator_runtime.emplace_back();  // mediator op: no queue/wall data
    return answer;
  }

  const sparql::SelectQuery& query = original;
  std::vector<sparql::SelectQuery> branches = sparql::ExpandUnions(query);
  if (branches.size() == 1) {
    LAKEFED_ASSIGN_OR_RETURN(std::shared_ptr<const FederatedPlan> plan,
                             PlanBranch(branches.front()));
    active_plan_ = plan;
    return ExecutePlan(*plan, wrappers_, options_, token_);
  }

  // UNION: execute every branch combination and merge (bag union), then
  // apply ORDER BY / DISTINCT / LIMIT over the merged rows at the engine.
  QueryAnswer merged;
  merged.variables = query.EffectiveProjection();
  // Branches additionally project ORDER BY variables so the merged sort can
  // see them; they are stripped again after sorting.
  std::vector<std::string> extended = merged.variables;
  for (const sparql::OrderCondition& cond : query.order_by) {
    if (std::find(extended.begin(), extended.end(), cond.variable) ==
        extended.end()) {
      extended.push_back(cond.variable);
    }
  }
  double offset = 0;
  for (sparql::SelectQuery& branch : branches) {
    branch.variables = extended;
    LAKEFED_ASSIGN_OR_RETURN(std::shared_ptr<const FederatedPlan> plan,
                             PlanBranch(branch));
    active_plan_ = plan;
    LAKEFED_ASSIGN_OR_RETURN(QueryAnswer part,
                             ExecutePlan(*plan, wrappers_, options_, token_));
    merged.plan_text += plan->Explain();
    for (size_t i = 0; i < part.rows.size(); ++i) {
      merged.trace.timestamps.push_back(offset + part.trace.timestamps[i]);
      merged.rows.push_back(std::move(part.rows[i]));
    }
    for (const AnswerTrace::Event& event : part.trace.events) {
      merged.trace.events.push_back({offset + event.time_s, event.label});
    }
    offset += part.trace.completion_seconds;
    merged.stats.MergeFrom(part.stats);
    merged.operator_rows.insert(merged.operator_rows.end(),
                                part.operator_rows.begin(),
                                part.operator_rows.end());
    merged.operator_estimates.insert(merged.operator_estimates.end(),
                                     part.operator_estimates.begin(),
                                     part.operator_estimates.end());
    merged.operator_runtime.insert(merged.operator_runtime.end(),
                                   part.operator_runtime.begin(),
                                   part.operator_runtime.end());
  }
  merged.trace.completion_seconds = offset;

  if (!query.order_by.empty()) {
    // Pair rows with timestamps so the trace stays aligned after sorting.
    std::vector<size_t> order(merged.rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(
        order.begin(), order.end(), [&](size_t ia, size_t ib) {
          const rdf::Binding& a = merged.rows[ia];
          const rdf::Binding& b = merged.rows[ib];
          for (const sparql::OrderCondition& cond : query.order_by) {
            auto ita = a.find(cond.variable);
            auto itb = b.find(cond.variable);
            bool ba = ita != a.end(), bb = itb != b.end();
            int c;
            if (!ba && !bb) {
              c = 0;
            } else if (ba != bb) {
              c = ba ? 1 : -1;
            } else {
              c = sparql::CompareTermsSparql(ita->second, itb->second);
            }
            if (c != 0) return cond.ascending ? c < 0 : c > 0;
          }
          return false;
        });
    std::vector<rdf::Binding> rows;
    rows.reserve(order.size());
    for (size_t idx : order) rows.push_back(std::move(merged.rows[idx]));
    merged.rows = std::move(rows);
  }
  if (query.distinct) {
    std::set<std::string> seen;
    std::vector<rdf::Binding> rows;
    for (rdf::Binding& row : merged.rows) {
      std::string key;
      for (const std::string& var : merged.variables) {
        auto it = row.find(var);
        key += it == row.end() ? std::string("~") : it->second.ToString();
        key.push_back('\x01');
      }
      if (seen.insert(key).second) rows.push_back(std::move(row));
    }
    merged.rows = std::move(rows);
  }
  if (query.limit.has_value() &&
      merged.rows.size() > static_cast<size_t>(*query.limit)) {
    merged.rows.resize(static_cast<size_t>(*query.limit));
  }
  // Strip the sort-only variables.
  if (extended.size() > merged.variables.size()) {
    for (rdf::Binding& row : merged.rows) {
      for (size_t i = merged.variables.size(); i < extended.size(); ++i) {
        row.erase(extended[i]);
      }
    }
  }
  merged.trace.timestamps.resize(merged.rows.size());
  return merged;
}

}  // namespace lakefed::fed
