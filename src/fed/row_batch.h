// RowBatch: the unit of inter-operator data transfer in the federated
// engine. Operators and wrappers exchange morsels of ~1K solution
// mappings instead of single rows, so the per-transfer costs (queue lock,
// condition-variable wake-up, wait-observer bookkeeping) amortize over
// the batch. A batch is just an owning vector of bindings — no shared
// state, so batches move freely between operator threads.
//
// Batch boundaries carry no meaning: consumers must treat a stream of
// batches exactly like the concatenated stream of rows (partial batches
// appear on producer close, after ramp-up, and whenever a queue hands
// out what it has rather than waiting for a full morsel).

#ifndef LAKEFED_FED_ROW_BATCH_H_
#define LAKEFED_FED_ROW_BATCH_H_

#include <cstddef>
#include <vector>

#include "rdf/bgp.h"

namespace lakefed::fed {

// Default number of rows per batch (PlanOptions::batch_size). Large
// enough to amortize queue traffic on sub-millisecond queries, small
// enough that back-pressure (queue capacity 4096 rows) still engages.
inline constexpr size_t kDefaultBatchSize = 1024;

struct RowBatch {
  std::vector<rdf::Binding> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
  void clear() { rows.clear(); }

  auto begin() { return rows.begin(); }
  auto end() { return rows.end(); }
  auto begin() const { return rows.begin(); }
  auto end() const { return rows.end(); }
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_ROW_BATCH_H_
