#include "fed/cache.h"

namespace lakefed::fed {

namespace {

// Rough footprint of a cached plan: the tree's node payloads dominated by
// sub-query strings. Walking Describe() per node would be exact-ish but the
// Explain text is already a faithful proxy and is computed once per insert.
size_t ApproxPlanBytes(const FederatedPlan& plan) {
  return plan.Explain().size() * 4 + 1024;
}

size_t ApproxQueryBytes(const sparql::SelectQuery& query) {
  return query.ToString().size() * 3 + 512;
}

}  // namespace

PlanCache::PlanCache(Config config)
    : plans_(internal::ShardedLru<FederatedPlan>::Limits{
          config.shards, config.max_entries, config.max_bytes}),
      parsed_(internal::ShardedLru<sparql::SelectQuery>::Limits{
          config.shards, config.max_parsed_entries, config.max_bytes}) {}

std::shared_ptr<const FederatedPlan> PlanCache::Lookup(
    const std::string& key, const EpochStamp& stamp) {
  return plans_.Lookup(key, stamp);
}

void PlanCache::Insert(const std::string& key, const std::string& scope,
                       std::shared_ptr<const FederatedPlan> plan,
                       const EpochStamp& stamp) {
  if (plan == nullptr) return;
  const size_t bytes = key.size() + ApproxPlanBytes(*plan);
  plans_.Insert(key, scope, std::move(plan), stamp, bytes);
}

std::shared_ptr<const sparql::SelectQuery> PlanCache::LookupParsed(
    const std::string& text) {
  EpochStamp stamp;
  stamp.structural = structural_epoch();
  return parsed_.Lookup(text, stamp);
}

void PlanCache::InsertParsed(const std::string& text,
                             sparql::SelectQuery query) {
  EpochStamp stamp;
  stamp.structural = structural_epoch();
  const size_t bytes = text.size() + ApproxQueryBytes(query);
  parsed_.Insert(text, "",
                 std::make_shared<const sparql::SelectQuery>(std::move(query)),
                 stamp, bytes);
}

void PlanCache::SetScopeQuota(const std::string& scope, uint64_t bytes) {
  plans_.SetScopeQuota(scope, bytes);
}

void PlanCache::Clear() {
  plans_.Clear();
  parsed_.Clear();
}

SubAnswerCache::SubAnswerCache(Config config)
    : config_(config),
      answers_(internal::ShardedLru<std::vector<rdf::Binding>>::Limits{
          config.shards, config.max_entries, config.max_bytes}) {}

size_t SubAnswerCache::ApproxBytes(const std::vector<rdf::Binding>& rows) {
  size_t bytes = 64;
  for (const rdf::Binding& row : rows) {
    bytes += 48;  // container overhead per row
    for (const auto& [var, term] : row) {
      bytes += var.size() + term.value().size() + 64;
    }
  }
  return bytes;
}

std::shared_ptr<const std::vector<rdf::Binding>> SubAnswerCache::Lookup(
    const std::string& key, const EpochStamp& stamp) {
  return answers_.Lookup(key, stamp);
}

void SubAnswerCache::Insert(const std::string& key, const std::string& scope,
                            std::vector<rdf::Binding> rows,
                            const EpochStamp& stamp) {
  const size_t bytes = key.size() + ApproxBytes(rows);
  if (bytes > config_.max_entry_bytes) return;
  answers_.Insert(
      key, scope,
      std::make_shared<const std::vector<rdf::Binding>>(std::move(rows)),
      stamp, bytes);
}

void SubAnswerCache::SetScopeQuota(const std::string& scope, uint64_t bytes) {
  answers_.SetScopeQuota(scope, bytes);
}

void SubAnswerCache::Clear() { answers_.Clear(); }

}  // namespace lakefed::fed
