// Planning/execution options of the federated engine, including the paper's
// two QEP families and per-heuristic toggles for ablations.

#ifndef LAKEFED_FED_OPTIONS_H_
#define LAKEFED_FED_OPTIONS_H_

#include <cstdint>
#include <optional>

#include "common/retry.h"
#include "common/status.h"
#include "fed/decomposer.h"
#include "fed/row_batch.h"
#include "fed/subquery.h"
#include "net/fault.h"
#include "net/network.h"

namespace lakefed::stats {
class StatsCatalog;
}  // namespace lakefed::stats

namespace lakefed::obs {
class MetricsRegistry;
class QueryLog;
class SpanRecorder;
}  // namespace lakefed::obs

namespace lakefed::svc {
class Scheduler;
}  // namespace lakefed::svc

namespace lakefed::fed {

class BreakerRegistry;
class LatencyTracker;
class PlanCache;
class SubAnswerCache;

enum class FailureMode {
  // Any unrecoverable source error (after retries and failover) fails the
  // whole query. The default; matches the engine's historic behaviour.
  kFailFast,
  // Unrecoverable sources are dropped from the answer: the query still
  // streams results from the healthy sources and the per-source errors are
  // reported in ExecutionStats (the answer is marked partial).
  kBestEffort,
};

std::string FailureModeToString(FailureMode mode);

enum class PlanMode {
  // Section 3(a): the QEP ignores indexes/normalization; as many operations
  // as possible run at the query-engine level.
  kPhysicalDesignUnaware,
  // Section 3(b): the QEP exploits the physical design via the heuristics.
  kPhysicalDesignAware,
};

std::string PlanModeToString(PlanMode mode);

struct PlanOptions {
  PlanMode mode = PlanMode::kPhysicalDesignAware;

  // Per-heuristic toggles (meaningful in aware mode; used by ablations).
  bool heuristic1_join_pushdown = true;
  bool heuristic2_filter_placement = true;

  // Simulated network; Heuristic 2 compares its mean latency against the
  // threshold to decide whether the network is "slow".
  net::NetworkProfile network = net::NetworkProfile::NoDelay();
  double slow_network_threshold_ms = net::kSlowNetworkThresholdMs;

  // Overrides Heuristic 2 for every relational filter (bench_h2 uses this
  // to study both placements explicitly).
  std::optional<FilterPlacement> force_filter_placement;

  // Use ANAPSID-style dependent (bind) joins instead of symmetric hash
  // joins where the inner side's join attribute is indexed.
  bool use_dependent_join = false;

  // Seed for the network delay sampling.
  uint64_t seed = 42;

  // Star-shaped (the paper) or triple-based (its future work) query
  // decomposition.
  DecompositionKind decomposition = DecompositionKind::kStarShaped;

  // Rows per morsel in the batched operator exchange (queue transfers,
  // wrapper emit, network accounting). 1 reproduces the legacy
  // row-at-a-time dataflow for A/B measurement; the answer multiset is
  // identical at every size, only the transfer granularity changes.
  // Validate() rejects 0.
  size_t batch_size = kDefaultBatchSize;

  // Emulates Ontario's *unoptimized* SPARQL-to-SQL translation for merged
  // sub-queries (the limitation Section 3 reports): instead of one SQL
  // join, each star is fetched separately and joined naively inside the
  // wrapper. Used to reproduce the "pushing down the join increases the
  // execution time" negative result.
  bool naive_sql_translation = false;

  // Cost-based planning (stats subsystem). Off by default so plans stay
  // bit-identical to the heuristic-only planner. When on, the planner uses
  // `stats_catalog` (not owned; FederatedEngine fills it in automatically
  // from its analyzed sources when left null) to estimate SSQ cardinalities,
  // order the join tree by ascending estimated size, and arbitrate the
  // heuristics when estimates and index rules disagree. Finished executions
  // fold actual operator cardinalities back into the catalog.
  bool use_cost_model = false;
  stats::StatsCatalog* stats_catalog = nullptr;

  // ---- Fault tolerance ------------------------------------------------
  // All defaults leave the engine on the exact historic code path: no
  // retries, fail-fast, no injected faults, no breaker consultation.

  // What to do when a source is unrecoverable (retries and failover
  // exhausted).
  FailureMode failure_mode = FailureMode::kFailFast;

  // Retry policy for source sub-queries. Disabled (max_attempts = 1) by
  // default. Backoff jitter draws from a per-leaf RNG derived from `seed`,
  // so fault runs are reproducible.
  RetryPolicy retry;

  // Deterministic fault injection: source id -> fault profile. Injectors
  // are seeded from `seed`, so the same plan + seed + faults yields the
  // same fault schedule. Empty = healthy network.
  net::FaultPlan faults;

  // Per-source circuit breakers (not owned). FederatedEngine fills in its
  // registry automatically when left null; executions report outcomes and
  // the planner routes around sources whose breaker is open.
  BreakerRegistry* breakers = nullptr;

  // ---- Tail tolerance -------------------------------------------------
  // Defenses against sources that are slow rather than down. Both are off
  // by default (the fault-free path stays bit-identical); both read the
  // shared per-source LatencyTracker below.

  // Adaptive per-attempt timeouts: when enabled and the tracker holds at
  // least `min_samples` observations for a source, each attempt's timeout
  // becomes max(floor_ms, multiplier * quantile(quantile)) instead of the
  // static retry.attempt_timeout_ms (the fallback while samples are
  // scarce). Either way the timeout is clamped to the session's remaining
  // deadline.
  struct AdaptiveTimeoutConfig {
    bool enabled = false;
    double quantile = 0.99;
    double multiplier = 3.0;
    double floor_ms = 10.0;
    uint64_t min_samples = 20;
  };
  AdaptiveTimeoutConfig adaptive_timeout;

  // Hedged leaf execution: when a leaf's primary attempt has run longer
  // than its hedge delay — multiplier * quantile(quantile) of the primary
  // source once `min_samples` observations exist, else fallback_delay_ms,
  // never below min_delay_ms — and the planner recorded failover replicas,
  // the same sub-query is speculatively launched against the first replica;
  // the first completed attempt wins and the loser is cancelled. Budgets
  // cap speculation: max_per_query hedges per execution (0 = never hedge)
  // and max_per_source in-flight+spent hedges against one replica, so
  // hedging cannot melt down an already-overloaded source.
  struct HedgeConfig {
    bool enabled = false;
    double quantile = 0.95;
    double multiplier = 1.0;
    double min_delay_ms = 1.0;
    double fallback_delay_ms = 50.0;
    uint64_t min_samples = 20;
    int max_per_query = 4;
    int max_per_source = 2;
  };
  HedgeConfig hedge;

  // Per-source latency quantiles feeding the two features above (not
  // owned). FederatedEngine fills in its tracker automatically when left
  // null, so observations accumulate across sessions; executions record
  // every wrapper call's duration into it.
  LatencyTracker* latency = nullptr;

  // ---- Plan & sub-answer caching --------------------------------------
  // Both levels are off by default and the off path is bit-identical to an
  // engine without the cache layer: no fingerprinting, no lookups, no
  // extra metrics or spans.

  // Reuse parsed queries and planned QEPs across sessions keyed by the
  // normalized query fingerprint (fed/fingerprint.h), invalidated by the
  // stats / routing epochs. The engine supplies its shared PlanCache via
  // `plans` when left null.
  bool plan_cache = false;

  // Reuse leaf sub-query results keyed by the sub-query stats key and the
  // source's data version: hits replay rows into the dataflow without a
  // wrapper call (no DelayChannel transfer). The engine supplies its shared
  // SubAnswerCache via `answers` when left null.
  bool answer_cache = false;

  // Shared cache instances (not owned). FederatedEngine fills these in
  // automatically when the corresponding flag is on and the pointer was
  // left null, so entries are shared across every session of the engine.
  PlanCache* plans = nullptr;
  SubAnswerCache* answers = nullptr;

  // Accounting scope for cache quotas — the query service sets this to the
  // tenant id, so per-tenant byte quotas (ServiceConfig::tenant_cache_quota)
  // bound how much of the shared caches one tenant can occupy. Empty =
  // unscoped.
  std::string cache_scope;

  // ---- Observability --------------------------------------------------
  // Metrics and span collection (src/obs). Default on: sessions record
  // latency histograms, per-operator/wrapper/transfer spans, the execution
  // counters and per-operator queue instrumentation (blocking-wait
  // histograms plus occupancy samples on every operator's output queue,
  // feeding ResultStream::profile()) into one registry. Off skips every
  // histogram, span and queue observer on the hot path (scalar accounting
  // needed by ExecutionStats is atomic counters either way), leaving
  // near-zero overhead.
  bool collect_metrics = true;

  // Per-query metrics registry (not owned). Sessions own one and fill this
  // in automatically; a standalone ExecutePlan run without a registry
  // falls back to an execution-local one so QueryAnswer::metrics_json is
  // still populated. Ignored when collect_metrics is false.
  obs::MetricsRegistry* metrics = nullptr;

  // Hierarchical span recorder (not owned; null = no spans). Sessions own
  // one covering parse -> plan -> execute -> wrapper -> network transfer.
  obs::SpanRecorder* spans = nullptr;

  // Span id under which planner/executor spans nest (0 = root). Set by the
  // session to its root span.
  uint64_t parent_span = 0;

  // Structured query log / slow-query flight recorder (not owned; null =
  // no logging, the default). FederatedEngine fills in its own log when
  // one was enabled via EnableQueryLog; every finished session then
  // appends one completion record, capturing the full profile + span tree
  // for slow/partial/error queries.
  obs::QueryLog* query_log = nullptr;

  // Tenant identity for observability (query-log records, sys.queries).
  // The query service sets it for every admitted session; unlike
  // cache_scope it carries no quota semantics and is set regardless of
  // whether caching is on. Empty = not multi-tenant.
  std::string tenant;

  // ---- Scheduling -----------------------------------------------------
  // Cooperative task scheduler (not owned; must outlive the session). When
  // set, the executor runs every operator as a resumable morsel-driven task
  // on this shared worker pool — blocking wrapper/network legs go to its
  // auxiliary I/O pool — so the thread count is bounded by the pool, not by
  // sessions x operators. Null (the default) preserves the historic
  // thread-per-operator dataflow. The answer multiset is identical either
  // way; only the execution substrate changes. The query service sets this
  // for every admitted session.
  svc::Scheduler* scheduler = nullptr;

  // Rejects inconsistent option combinations. Called by the engine at
  // session creation, so invalid options fail fast instead of silently
  // producing nonsensical plans.
  Status Validate() const;
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_OPTIONS_H_
