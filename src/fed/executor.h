// Execution of federated plans: every service scan and every operator runs
// on its own thread connected by bounded queues, so answers stream to the
// client as sources deliver them (ANAPSID's adaptive operator model). The
// symmetric hash join produces results as soon as tuples arrive from either
// input — the paper's answer traces (Figure 2) depend on this behaviour.
//
// Operators exchange RowBatch morsels (PlanOptions::batch_size rows, see
// fed/row_batch.h) rather than single rows, so queue traffic amortizes;
// batch boundaries carry no meaning and the answer multiset is identical
// at every batch size.
//
// Two entry points:
//  * PlanExecution — the incremental form: spawn the dataflow, pull
//    batches (or single rows via the compatibility shim), tear down
//    cooperatively via a CancellationToken. This is what streaming
//    sessions (fed/session.h) run on.
//  * ExecutePlan — the materializing convenience wrapper used by the
//    blocking Execute shims: drains a PlanExecution to completion.

#ifndef LAKEFED_FED_EXECUTOR_H_
#define LAKEFED_FED_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "fed/options.h"
#include "fed/plan.h"
#include "fed/row_batch.h"
#include "fed/trace.h"
#include "fed/wrapper.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace lakefed::fed {

struct ExecutionStats {
  // Messages retrieved from sources (each passed through the delay channel).
  uint64_t messages_transferred = 0;
  // Total simulated network delay injected, milliseconds.
  double network_delay_ms = 0;
  // Rows received from all sources (the intermediate-result size).
  uint64_t source_rows = 0;

  // Per-source share of the traffic above (keyed by source id).
  struct SourceBreakdown {
    uint64_t rows = 0;      // result rows shipped by this source
    uint64_t messages = 0;  // delay-channel transfers
    double delay_ms = 0;    // simulated delay injected on this channel
    uint64_t retries = 0;   // sub-query re-attempts against this source
  };
  std::map<std::string, SourceBreakdown> per_source;

  // ---- Fault-tolerance accounting (all zero on fault-free runs) --------
  // Leaf sub-query re-attempts after transient failures (retry policy).
  uint64_t retries = 0;
  // Leaf attempts moved to a failover alternate serving the same molecule.
  uint64_t failovers = 0;
  // Faults fired by configured fault injectors (PlanOptions::faults).
  uint64_t faults_injected = 0;
  // Requests refused because a source's circuit breaker was open.
  uint64_t breaker_rejections = 0;
  // ---- Tail-tolerance accounting (all zero unless hedging / adaptive
  // timeouts are enabled) ------------------------------------------------
  // Speculative replica attempts launched because the primary ran past its
  // hedge delay.
  uint64_t hedges_fired = 0;
  // Hedges that finished first and supplied the leaf's rows.
  uint64_t hedge_wins = 0;
  // Race losers cancelled mid-flight (either side).
  uint64_t hedges_cancelled = 0;
  // Hedge opportunities skipped because a budget (per query or per source)
  // was exhausted.
  uint64_t hedges_suppressed = 0;
  // Attempts whose timeout came from observed latency quantiles instead of
  // the static retry.attempt_timeout_ms.
  uint64_t adaptive_timeouts = 0;
  // Latency-spike faults fired by configured injectors (slow profile).
  uint64_t latency_spikes_injected = 0;
  // ---- Reuse accounting (all zero unless PlanOptions::answer_cache) ----
  // Leaf sub-queries answered from the sub-answer cache: no wrapper call,
  // no simulated network traffic, rows replayed from memory.
  uint64_t sub_answer_hits = 0;
  // Leaf sub-queries that consulted the cache and fell through to a real
  // execution (memoizing the rows on clean completion).
  uint64_t sub_answer_misses = 0;
  // Sources that exhausted their retries during this execution, keyed by
  // source id, with the last error observed. A listed source may still be
  // covered by a failover alternate — `partial` says whether answers were
  // actually lost.
  std::map<std::string, std::string> failed_sources;
  // Ordered human-readable log of recovery actions (retries, failovers,
  // breaker trips) taken during the execution.
  std::vector<std::string> recovery_events;
  // True when best-effort execution dropped an unrecoverable leaf: the
  // answer is missing that leaf's contribution.
  bool partial = false;

  // Folds `other` into this (totals summed, per-source entries merged) —
  // used by sessions accumulating multiple plan executions.
  void MergeFrom(const ExecutionStats& other);
};

struct QueryAnswer {
  std::vector<std::string> variables;
  std::vector<rdf::Binding> rows;
  AnswerTrace trace;
  ExecutionStats stats;
  std::string plan_text;
  // Rows emitted by each operator of the plan, in spawn order
  // (EXPLAIN-ANALYZE-style observability).
  std::vector<std::pair<std::string, uint64_t>> operator_rows;
  // Parallel to operator_rows: the planner's estimated cardinality of each
  // operator, or -1 when no estimate was made (cost model off).
  std::vector<double> operator_estimates;
  // Parallel to operator_rows: per-operator runtime accounting (thread wall
  // time, output-queue waits and occupancy) captured when
  // PlanOptions::collect_metrics is on; default-valued entries otherwise.
  std::vector<obs::OperatorRuntime> operator_runtime;
  // Stable-JSON rendering of the query's metrics registry (src/obs):
  // counters, gauges and latency histograms with p50/p95/p99. Empty when
  // PlanOptions::collect_metrics is off.
  std::string metrics_json;

  // Multi-line "rows  operator" rendering of operator_rows (with estimates
  // when present) followed by the per-source traffic breakdown.
  std::string OperatorStatsText() const;
};

// A live, incremental execution of one federated plan: Start() spawns the
// wrapper/operator threads, Next() pulls rows from the root queue as they
// are produced, Finish() tears everything down and reports the terminal
// status. Cancelling the token (or its deadline expiring) closes every
// queue of the dataflow, so blocked producers, consumers and mid-delay
// network transfers unwind promptly instead of draining.
class PlanExecution {
 public:
  PlanExecution(const std::map<std::string, SourceWrapper*>& wrappers,
                const PlanOptions& options, CancellationToken token);
  ~PlanExecution();  // equivalent to Finish()

  PlanExecution(const PlanExecution&) = delete;
  PlanExecution& operator=(const PlanExecution&) = delete;

  // Spawns the dataflow for `plan`. Call exactly once, before Next().
  void Start(const FederatedPlan& plan);

  // Blocks for the next morsel of root rows (the primary pull API).
  // Returns true with at least one row in `batch`; false means
  // end-of-stream: completion, error, cancellation or deadline expiry —
  // Finish() discriminates.
  bool NextBatch(RowBatch* batch);

  // Row-at-a-time compatibility shim over NextBatch(): serves rows from
  // an internal pending batch. nullopt means end-of-stream. May be
  // interleaved freely with NextBatch() (pending rows are served first).
  std::optional<rdf::Binding> Next();

  // Closes all queues, joins every thread and freezes the statistics.
  // Idempotent. Returns the first wrapper/operator error if any, otherwise
  // the token's status (kCancelled / kDeadlineExceeded), otherwise OK.
  Status Finish();

  // Valid after Finish(). Partial results of a cancelled or expired run are
  // reported faithfully (stats cover the work actually performed).
  const ExecutionStats& stats() const;
  const std::vector<std::pair<std::string, uint64_t>>& operator_rows() const;
  const std::vector<double>& operator_estimates() const;
  // Parallel to operator_rows(): runtime accounting per operator (wall
  // time, queue waits, occupancy). Meaningful when collect_metrics was on;
  // default-valued entries of the same length otherwise.
  const std::vector<obs::OperatorRuntime>& operator_runtime() const;
  // Timestamped recovery events (retries, failovers, breaker trips),
  // seconds since the execution was created. Empty on fault-free runs.
  const std::vector<AnswerTrace::Event>& trace_events() const;
  // Snapshot of the execution's metrics registry (counters always; latency
  // histograms only when PlanOptions::collect_metrics). Stable after
  // Finish().
  obs::MetricsSnapshot metrics_snapshot() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

// Runs `plan` to completion. `wrappers` maps source id -> wrapper. The
// token, when cancellable, aborts the run (the returned status is then the
// cancellation reason).
Result<QueryAnswer> ExecutePlan(
    const FederatedPlan& plan,
    const std::map<std::string, SourceWrapper*>& wrappers,
    const PlanOptions& options, CancellationToken token = {});

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_EXECUTOR_H_
