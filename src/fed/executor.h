// Execution of federated plans: every service scan and every operator runs
// on its own thread connected by bounded queues, so answers stream to the
// client as sources deliver them (ANAPSID's adaptive operator model). The
// symmetric hash join produces results as soon as tuples arrive from either
// input — the paper's answer traces (Figure 2) depend on this behaviour.

#ifndef LAKEFED_FED_EXECUTOR_H_
#define LAKEFED_FED_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "fed/options.h"
#include "fed/plan.h"
#include "fed/trace.h"
#include "fed/wrapper.h"

namespace lakefed::fed {

struct ExecutionStats {
  // Messages retrieved from sources (each passed through the delay channel).
  uint64_t messages_transferred = 0;
  // Total simulated network delay injected, milliseconds.
  double network_delay_ms = 0;
  // Rows received from all sources (the intermediate-result size).
  uint64_t source_rows = 0;
};

struct QueryAnswer {
  std::vector<std::string> variables;
  std::vector<rdf::Binding> rows;
  AnswerTrace trace;
  ExecutionStats stats;
  std::string plan_text;
  // Rows emitted by each operator of the plan, in spawn order
  // (EXPLAIN-ANALYZE-style observability).
  std::vector<std::pair<std::string, uint64_t>> operator_rows;

  // Multi-line "rows  operator" rendering of operator_rows.
  std::string OperatorStatsText() const;
};

// Runs `plan` to completion. `wrappers` maps source id -> wrapper.
Result<QueryAnswer> ExecutePlan(
    const FederatedPlan& plan,
    const std::map<std::string, SourceWrapper*>& wrappers,
    const PlanOptions& options);

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_EXECUTOR_H_
