#include "fed/trace.h"

#include <algorithm>
#include <cstdio>

namespace lakefed::fed {

size_t AnswerTrace::AnswersAt(double t) const {
  return static_cast<size_t>(
      std::upper_bound(timestamps.begin(), timestamps.end(), t) -
      timestamps.begin());
}

std::string AnswerTrace::ToCsv() const {
  std::string out = "time_s,answers\n";
  char buf[64];
  for (size_t i = 0; i < timestamps.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6f,%zu\n", timestamps[i], i + 1);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%.6f,%zu\n", completion_seconds,
                timestamps.size());
  out += buf;
  return out;
}

std::string AnswerTrace::ToSampledCsv(size_t points) const {
  std::string out = "time_s,answers\n";
  char buf[64];
  if (points < 2) points = 2;
  for (size_t i = 0; i < points; ++i) {
    double t = completion_seconds * static_cast<double>(i) /
               static_cast<double>(points - 1);
    std::snprintf(buf, sizeof(buf), "%.6f,%zu\n", t, AnswersAt(t));
    out += buf;
  }
  return out;
}

}  // namespace lakefed::fed
