#include "fed/engine.h"

#include <algorithm>

#include "sparql/parser.h"

namespace lakefed::fed {

Status FederatedEngine::RegisterSource(
    std::unique_ptr<SourceWrapper> wrapper) {
  if (sealed()) {
    return Status::InvalidArgument(
        "engine is sealed: sources cannot be registered once a session has "
        "been created");
  }
  const std::string& id = wrapper->id();
  if (owned_.count(id) > 0) {
    return Status::AlreadyExists("source '" + id + "' already registered");
  }
  for (const mapping::RdfMt& molecule : wrapper->Molecules()) {
    catalog_.Add(molecule);
  }
  wrappers_[id] = wrapper.get();
  owned_[id] = std::move(wrapper);
  return Status::OK();
}

SourceWrapper* FederatedEngine::wrapper(const std::string& source_id) {
  auto it = wrappers_.find(source_id);
  return it == wrappers_.end() ? nullptr : it->second;
}

const SourceWrapper* FederatedEngine::wrapper(
    const std::string& source_id) const {
  auto it = wrappers_.find(source_id);
  return it == wrappers_.end() ? nullptr : it->second;
}

Status FederatedEngine::AnalyzeSources(
    const stats::AnalyzeOptions& options) const {
  Seal();
  auto catalog = std::make_unique<stats::StatsCatalog>();
  for (const auto& [id, source] : wrappers_) {
    stats::SourceStats stats;
    LAKEFED_RETURN_NOT_OK(source->CollectStatistics(options, &stats));
    catalog->AddSource(std::move(stats));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (stats_ != nullptr) {
      catalog->MergeFeedbackFrom(*stats_);
      retired_stats_.push_back(std::move(stats_));
    }
    stats_ = std::move(catalog);
  }
  // Everything cached against the previous statistics is now suspect: the
  // plans were costed from superseded histograms and the sub-answers may
  // reflect re-profiled (changed) data. Bumping the structural epochs
  // invalidates lazily, at first reuse.
  plan_cache_.BumpStructuralEpoch();
  answer_cache_.BumpStructuralEpoch();
  return Status::OK();
}

const stats::StatsCatalog* FederatedEngine::stats_catalog() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_.get();
}

Status FederatedEngine::PrepareStats(PlanOptions* options) const {
  if (!options->use_cost_model || options->stats_catalog != nullptr) {
    return Status::OK();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (stats_ != nullptr) {
      options->stats_catalog = stats_.get();
      return Status::OK();
    }
  }
  LAKEFED_RETURN_NOT_OK(AnalyzeSources());
  std::lock_guard<std::mutex> lock(stats_mu_);
  options->stats_catalog = stats_.get();
  return Status::OK();
}

uint64_t FederatedEngine::AddMetricsSampler(MetricsSampler sampler) const {
  std::lock_guard<std::mutex> lock(obs_mu_);
  const uint64_t token = next_sampler_token_++;
  samplers_[token] = std::move(sampler);
  return token;
}

void FederatedEngine::RemoveMetricsSampler(uint64_t token) const {
  std::lock_guard<std::mutex> lock(obs_mu_);
  samplers_.erase(token);
}

void FederatedEngine::EnableQueryLog(obs::QueryLogConfig config) const {
  std::lock_guard<std::mutex> lock(obs_mu_);
  if (query_log_ == nullptr) {
    query_log_ = std::make_unique<obs::QueryLog>(config);
  }
}

obs::QueryLog* FederatedEngine::query_log() const {
  std::lock_guard<std::mutex> lock(obs_mu_);
  return query_log_.get();
}

obs::MetricsSnapshot FederatedEngine::MetricsSnapshot() const {
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  // Project the breaker registry into the snapshot so `.breakers` and
  // `.metrics` agree: one state gauge (the BreakerState enum value) and the
  // cumulative transition/rejection/failure counters per tracked source.
  std::vector<BreakerRegistry::Entry> entries = breakers_.Snapshot();
  bool injected = !entries.empty();
  for (const BreakerRegistry::Entry& e : entries) {
    const std::string prefix = "svc.breaker." + e.source_id + ".";
    snapshot.gauges.push_back(
        {prefix + "state", static_cast<int64_t>(e.state)});
    snapshot.counters.push_back({prefix + "opened", e.times_opened});
    snapshot.counters.push_back({prefix + "half_open", e.times_half_open});
    snapshot.counters.push_back({prefix + "closed", e.times_closed});
    snapshot.counters.push_back({prefix + "rejected", e.rejected_requests});
    snapshot.counters.push_back({prefix + "failures", e.total_failures});
  }
  // Registered samplers (the service projects scheduler/admission state
  // here). Run under obs_mu_ so removal is a real barrier: once
  // RemoveMetricsSampler returns, the sampler can no longer be running.
  {
    std::lock_guard<std::mutex> lock(obs_mu_);
    if (query_log_ != nullptr) {
      snapshot.counters.push_back(
          {"obs.querylog.recorded", query_log_->total_recorded()});
      snapshot.counters.push_back(
          {"obs.querylog.slow", query_log_->slow_recorded()});
      snapshot.counters.push_back(
          {"obs.querylog.dropped", query_log_->dropped()});
      injected = true;
    }
    for (const auto& [token, sampler] : samplers_) {
      sampler(&snapshot);
      injected = true;
    }
  }
  if (!injected) return snapshot;
  // Snapshots render sorted by name; keep that invariant after injecting.
  std::sort(snapshot.counters.begin(), snapshot.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snapshot;
}

Result<FederatedPlan> FederatedEngine::Plan(const std::string& sparql,
                                            const PlanOptions& options)
    const {
  PlanOptions effective = options;
  if (effective.breakers == nullptr) effective.breakers = &breakers_;
  if (effective.latency == nullptr) effective.latency = &latency_;
  LAKEFED_RETURN_NOT_OK(PrepareStats(&effective));
  LAKEFED_ASSIGN_OR_RETURN(sparql::SelectQuery query,
                           sparql::ParseSparql(sparql));
  std::vector<sparql::SelectQuery> branches = sparql::ExpandUnions(query);
  LAKEFED_ASSIGN_OR_RETURN(
      FederatedPlan plan,
      BuildPlan(branches.front(), catalog_, wrappers_, effective));
  if (branches.size() > 1) {
    plan.decisions.insert(
        plan.decisions.begin(),
        "UNION: " + std::to_string(branches.size()) +
            " branch combinations planned and executed independently "
            "(first branch shown)");
  }
  return plan;
}

Result<std::unique_ptr<ResultStream>> FederatedEngine::CreateSession(
    QueryRequest request) const {
  LAKEFED_RETURN_NOT_OK(request.options.Validate());
  Seal();
  LAKEFED_RETURN_NOT_OK(PrepareStats(&request.options));
  if (request.options.breakers == nullptr) {
    request.options.breakers = &breakers_;
  }
  if (request.options.latency == nullptr) {
    request.options.latency = &latency_;
  }
  if (request.options.plan_cache && request.options.plans == nullptr) {
    request.options.plans = &plan_cache_;
  }
  if (request.options.answer_cache && request.options.answers == nullptr) {
    request.options.answers = &answer_cache_;
  }
  if (request.options.query_log == nullptr) {
    request.options.query_log = query_log();  // null unless enabled
  }
  // The session's span recorder is created before parsing so the parse
  // phase is the first child of the root "session" span; the stream takes
  // ownership and closes the root at Finish().
  std::unique_ptr<obs::SpanRecorder> spans;
  uint64_t session_span = 0;
  if (request.options.collect_metrics) {
    spans = std::make_unique<obs::SpanRecorder>();
    session_span = spans->StartSpan("session");
  }
  metrics_.GetCounter("engine.sessions")->Increment();
  sparql::SelectQuery query;
  if (request.parsed.has_value()) {
    query = std::move(*request.parsed);
  } else {
    PlanCache* plans =
        request.options.plan_cache ? request.options.plans : nullptr;
    std::shared_ptr<const sparql::SelectQuery> cached;
    if (plans != nullptr) cached = plans->LookupParsed(request.query);
    if (cached != nullptr) {
      // Repeat of a known text: reuse the AST. The marker span replaces
      // the "parse" phase so profiles show where the time went (didn't).
      obs::Span parse_span(spans.get(), "parse-cache", session_span);
      query = *cached;
    } else {
      obs::Span parse_span(spans.get(), "parse", session_span);
      LAKEFED_ASSIGN_OR_RETURN(query, sparql::ParseSparql(request.query));
      if (plans != nullptr) plans->InsertParsed(request.query, query);
    }
  }
  CancellationToken token =
      request.timeout.has_value()
          ? CancellationToken::WithDeadline(CancellationToken::Clock::now() +
                                            *request.timeout)
          : CancellationToken::Cancellable();
  return ResultStream::Create(catalog_, wrappers_, std::move(query),
                              std::move(request.options), std::move(token),
                              std::move(spans), session_span, &metrics_);
}

Result<QueryAnswer> FederatedEngine::Execute(const std::string& sparql,
                                             const PlanOptions& options)
    const {
  LAKEFED_ASSIGN_OR_RETURN(std::unique_ptr<ResultStream> stream,
                           CreateSession(QueryRequest::Text(sparql, options)));
  return stream->Drain();
}

Result<QueryAnswer> FederatedEngine::ExecuteParsed(
    const sparql::SelectQuery& query, const PlanOptions& options) const {
  LAKEFED_ASSIGN_OR_RETURN(
      std::unique_ptr<ResultStream> stream,
      CreateSession(QueryRequest::Parsed(query, options)));
  return stream->Drain();
}

}  // namespace lakefed::fed
