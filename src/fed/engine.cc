#include "fed/engine.h"

#include <algorithm>
#include <set>

#include "sparql/aggregate.h"
#include "sparql/filter_expr.h"
#include "sparql/parser.h"

namespace lakefed::fed {

Status FederatedEngine::RegisterSource(
    std::unique_ptr<SourceWrapper> wrapper) {
  const std::string& id = wrapper->id();
  if (owned_.count(id) > 0) {
    return Status::AlreadyExists("source '" + id + "' already registered");
  }
  for (const mapping::RdfMt& molecule : wrapper->Molecules()) {
    catalog_.Add(molecule);
  }
  wrappers_[id] = wrapper.get();
  owned_[id] = std::move(wrapper);
  return Status::OK();
}

SourceWrapper* FederatedEngine::wrapper(const std::string& source_id) {
  auto it = wrappers_.find(source_id);
  return it == wrappers_.end() ? nullptr : it->second;
}

Result<FederatedPlan> FederatedEngine::Plan(const std::string& sparql,
                                            const PlanOptions& options)
    const {
  LAKEFED_ASSIGN_OR_RETURN(sparql::SelectQuery query,
                           sparql::ParseSparql(sparql));
  std::vector<sparql::SelectQuery> branches = sparql::ExpandUnions(query);
  LAKEFED_ASSIGN_OR_RETURN(
      FederatedPlan plan,
      BuildPlan(branches.front(), catalog_, wrappers_, options));
  if (branches.size() > 1) {
    plan.decisions.insert(
        plan.decisions.begin(),
        "UNION: " + std::to_string(branches.size()) +
            " branch combinations planned and executed independently "
            "(first branch shown)");
  }
  return plan;
}

Result<QueryAnswer> FederatedEngine::Execute(const std::string& sparql,
                                             const PlanOptions& options)
    const {
  LAKEFED_ASSIGN_OR_RETURN(sparql::SelectQuery query,
                           sparql::ParseSparql(sparql));
  return ExecuteParsed(query, options);
}

Result<QueryAnswer> FederatedEngine::ExecuteParsed(
    const sparql::SelectQuery& original, const PlanOptions& options) const {
  // Aggregates always run at the mediator: execute the aggregate-free inner
  // query federated, then group the merged solutions here.
  if (original.HasAggregates()) {
    sparql::SelectQuery inner = original;
    inner.aggregates.clear();
    inner.group_by.clear();
    inner.order_by.clear();
    inner.limit.reset();
    inner.distinct = false;
    inner.select_all = false;
    bool count_star = false;
    std::set<std::string> needed(original.group_by.begin(),
                                 original.group_by.end());
    for (const sparql::SelectAggregate& agg : original.aggregates) {
      if (agg.var.empty()) {
        count_star = true;
      } else {
        needed.insert(agg.var);
      }
    }
    inner.variables =
        count_star ? original.PatternVariables()
                   : std::vector<std::string>(needed.begin(), needed.end());
    if (inner.variables.empty()) {
      inner.variables = original.PatternVariables();
    }
    LAKEFED_ASSIGN_OR_RETURN(QueryAnswer base,
                             ExecuteParsed(inner, options));
    QueryAnswer answer;
    answer.variables = original.EffectiveProjection();
    answer.plan_text = base.plan_text + "-> EngineAggregate (GROUP BY at "
                                        "the mediator)\n";
    answer.stats = base.stats;
    answer.operator_rows = std::move(base.operator_rows);
    std::vector<rdf::Binding> aggregated = sparql::AggregateSolutions(
        base.rows, original.group_by, original.aggregates);
    sparql::SortBindings(&aggregated, original.order_by);
    if (original.distinct) {
      std::set<std::string> seen;
      std::vector<rdf::Binding> rows;
      for (rdf::Binding& row : aggregated) {
        std::string key;
        for (const std::string& var : answer.variables) {
          auto it = row.find(var);
          key += it == row.end() ? std::string("~") : it->second.ToString();
          key.push_back('\x01');
        }
        if (seen.insert(key).second) rows.push_back(std::move(row));
      }
      aggregated = std::move(rows);
    }
    if (original.limit.has_value() &&
        aggregated.size() > static_cast<size_t>(*original.limit)) {
      aggregated.resize(static_cast<size_t>(*original.limit));
    }
    answer.rows = std::move(aggregated);
    // Aggregation is blocking: all answers materialize at completion time.
    answer.trace.completion_seconds = base.trace.completion_seconds;
    answer.trace.timestamps.assign(answer.rows.size(),
                                   base.trace.completion_seconds);
    answer.operator_rows.emplace_back("EngineAggregate",
                                      answer.rows.size());
    return answer;
  }

  const sparql::SelectQuery& query = original;
  std::vector<sparql::SelectQuery> branches = sparql::ExpandUnions(query);
  if (branches.size() == 1) {
    LAKEFED_ASSIGN_OR_RETURN(
        FederatedPlan plan,
        BuildPlan(branches.front(), catalog_, wrappers_, options));
    return ExecutePlan(plan, wrappers_, options);
  }

  // UNION: execute every branch combination and merge (bag union), then
  // apply ORDER BY / DISTINCT / LIMIT over the merged rows at the engine.
  QueryAnswer merged;
  merged.variables = query.EffectiveProjection();
  // Branches additionally project ORDER BY variables so the merged sort can
  // see them; they are stripped again after sorting.
  std::vector<std::string> extended = merged.variables;
  for (const sparql::OrderCondition& cond : query.order_by) {
    if (std::find(extended.begin(), extended.end(), cond.variable) ==
        extended.end()) {
      extended.push_back(cond.variable);
    }
  }
  double offset = 0;
  for (sparql::SelectQuery& branch : branches) {
    branch.variables = extended;
    LAKEFED_ASSIGN_OR_RETURN(
        FederatedPlan plan, BuildPlan(branch, catalog_, wrappers_, options));
    LAKEFED_ASSIGN_OR_RETURN(QueryAnswer part,
                             ExecutePlan(plan, wrappers_, options));
    merged.plan_text += plan.Explain();
    for (size_t i = 0; i < part.rows.size(); ++i) {
      merged.trace.timestamps.push_back(offset + part.trace.timestamps[i]);
      merged.rows.push_back(std::move(part.rows[i]));
    }
    offset += part.trace.completion_seconds;
    merged.stats.messages_transferred += part.stats.messages_transferred;
    merged.stats.network_delay_ms += part.stats.network_delay_ms;
    merged.stats.source_rows += part.stats.source_rows;
    merged.operator_rows.insert(merged.operator_rows.end(),
                                part.operator_rows.begin(),
                                part.operator_rows.end());
  }
  merged.trace.completion_seconds = offset;

  if (!query.order_by.empty()) {
    // Pair rows with timestamps so the trace stays aligned after sorting.
    std::vector<size_t> order(merged.rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(
        order.begin(), order.end(), [&](size_t ia, size_t ib) {
          const rdf::Binding& a = merged.rows[ia];
          const rdf::Binding& b = merged.rows[ib];
          for (const sparql::OrderCondition& cond : query.order_by) {
            auto ita = a.find(cond.variable);
            auto itb = b.find(cond.variable);
            bool ba = ita != a.end(), bb = itb != b.end();
            int c;
            if (!ba && !bb) {
              c = 0;
            } else if (ba != bb) {
              c = ba ? 1 : -1;
            } else {
              c = sparql::CompareTermsSparql(ita->second, itb->second);
            }
            if (c != 0) return cond.ascending ? c < 0 : c > 0;
          }
          return false;
        });
    std::vector<rdf::Binding> rows;
    rows.reserve(order.size());
    for (size_t idx : order) rows.push_back(std::move(merged.rows[idx]));
    merged.rows = std::move(rows);
  }
  if (query.distinct) {
    std::set<std::string> seen;
    std::vector<rdf::Binding> rows;
    for (rdf::Binding& row : merged.rows) {
      std::string key;
      for (const std::string& var : merged.variables) {
        auto it = row.find(var);
        key += it == row.end() ? std::string("~") : it->second.ToString();
        key.push_back('\x01');
      }
      if (seen.insert(key).second) rows.push_back(std::move(row));
    }
    merged.rows = std::move(rows);
  }
  if (query.limit.has_value() &&
      merged.rows.size() > static_cast<size_t>(*query.limit)) {
    merged.rows.resize(static_cast<size_t>(*query.limit));
  }
  // Strip the sort-only variables.
  if (extended.size() > merged.variables.size()) {
    for (rdf::Binding& row : merged.rows) {
      for (size_t i = merged.variables.size(); i < extended.size(); ++i) {
        row.erase(extended[i]);
      }
    }
  }
  merged.trace.timestamps.resize(merged.rows.size());
  return merged;
}

}  // namespace lakefed::fed
