#include "fed/options.h"

namespace lakefed::fed {

std::string PlanModeToString(PlanMode mode) {
  return mode == PlanMode::kPhysicalDesignAware ? "physical-design-aware"
                                                : "physical-design-unaware";
}

std::string FailureModeToString(FailureMode mode) {
  return mode == FailureMode::kBestEffort ? "best-effort" : "fail-fast";
}

Status PlanOptions::Validate() const {
  if (slow_network_threshold_ms < 0) {
    return Status::InvalidArgument(
        "slow_network_threshold_ms must be non-negative, got " +
        std::to_string(slow_network_threshold_ms));
  }
  if (force_filter_placement.has_value() && !heuristic2_filter_placement) {
    return Status::InvalidArgument(
        "force_filter_placement contradicts disabled "
        "heuristic2_filter_placement: forcing a placement is an override of "
        "Heuristic 2 and requires it enabled");
  }
  if (network.alpha < 0 || network.beta < 0 || network.time_scale < 0) {
    return Status::InvalidArgument(
        "network profile '" + network.name +
        "' has negative gamma parameters or time scale");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument(
        "batch_size must be at least 1 (1 = row-at-a-time)");
  }
  LAKEFED_RETURN_NOT_OK(retry.Validate());
  if (adaptive_timeout.quantile <= 0 || adaptive_timeout.quantile > 1.0) {
    return Status::InvalidArgument(
        "adaptive_timeout.quantile must be in (0, 1], got " +
        std::to_string(adaptive_timeout.quantile));
  }
  if (adaptive_timeout.multiplier <= 0) {
    return Status::InvalidArgument(
        "adaptive_timeout.multiplier must be > 0");
  }
  if (adaptive_timeout.floor_ms < 0) {
    return Status::InvalidArgument("adaptive_timeout.floor_ms must be >= 0");
  }
  if (hedge.quantile <= 0 || hedge.quantile > 1.0) {
    return Status::InvalidArgument("hedge.quantile must be in (0, 1], got " +
                                   std::to_string(hedge.quantile));
  }
  if (hedge.multiplier <= 0) {
    return Status::InvalidArgument("hedge.multiplier must be > 0");
  }
  if (hedge.min_delay_ms < 0 || hedge.fallback_delay_ms < 0) {
    return Status::InvalidArgument(
        "hedge delays (min_delay_ms, fallback_delay_ms) must be >= 0");
  }
  if (hedge.max_per_query < 0 || hedge.max_per_source < 0) {
    return Status::InvalidArgument(
        "hedge budgets (max_per_query, max_per_source) must be >= 0");
  }
  for (const auto& [source, profile] : faults) {
    Status s = profile.Validate();
    if (!s.ok()) {
      return Status::InvalidArgument("fault profile for source '" + source +
                                     "': " + s.message());
    }
  }
  if (!plan_cache && plans != nullptr) {
    return Status::InvalidArgument(
        "a PlanCache was supplied but plan_cache is off; enable plan_cache "
        "or drop the pointer");
  }
  if (!answer_cache && answers != nullptr) {
    return Status::InvalidArgument(
        "a SubAnswerCache was supplied but answer_cache is off; enable "
        "answer_cache or drop the pointer");
  }
  return Status::OK();
}

}  // namespace lakefed::fed
