#include "fed/options.h"

namespace lakefed::fed {

std::string PlanModeToString(PlanMode mode) {
  return mode == PlanMode::kPhysicalDesignAware ? "physical-design-aware"
                                                : "physical-design-unaware";
}

}  // namespace lakefed::fed
