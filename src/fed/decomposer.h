// Query decomposition into star-shaped sub-queries and filter association.

#ifndef LAKEFED_FED_DECOMPOSER_H_
#define LAKEFED_FED_DECOMPOSER_H_

#include <vector>

#include "common/status.h"
#include "fed/subquery.h"
#include "sparql/ast.h"

namespace lakefed::fed {

// How the BGP is partitioned into sub-queries. The paper uses star-shaped
// decomposition (its Section 2.1) and names triple-based decomposition as
// future work; both are supported.
enum class DecompositionKind {
  kStarShaped,   // group triple patterns by subject (ANAPSID/MULDER/Ontario)
  kTripleBased,  // one sub-query per triple pattern (FedX-style)
};

struct DecomposedQuery {
  std::vector<StarSubQuery> stars;
  // Filter conjuncts whose variables span several stars (or none); these
  // must run at the engine above the joins.
  std::vector<sparql::FilterExprPtr> global_filters;
  // One star per OPTIONAL group (left-joined after the main tree). Each
  // group must form a single star whose filters reference only its own
  // variables.
  std::vector<StarSubQuery> optional_stars;
};

// Partitions the BGP into SSQs (star-shaped: by subject, in
// first-appearance order; triple-based: one pattern each), detects each
// star's class (constant rdf:type object), splits FILTERs into conjuncts
// and attaches each conjunct to the sub-query covering its variables with
// the fewest variables (global otherwise).
Result<DecomposedQuery> Decompose(
    const sparql::SelectQuery& query,
    DecompositionKind kind = DecompositionKind::kStarShaped);

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_DECOMPOSER_H_
