// SourceWrapper: the mediator/wrapper boundary (Wiederhold architecture).
// One wrapper fronts one Data Lake source; the engine talks to sources only
// through this interface. Implementations live in src/wrapper/.

#ifndef LAKEFED_FED_WRAPPER_H_
#define LAKEFED_FED_WRAPPER_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/blocking_queue.h"
#include "common/status.h"
#include "fed/row_batch.h"
#include "fed/subquery.h"
#include "mapping/rdf_mt.h"
#include "net/network.h"
#include "rdf/bgp.h"
#include "stats/analyze.h"
#include "stats/stats_catalog.h"

namespace lakefed::fed {

// Everything a wrapper needs to execute one sub-query: where to ship
// answers, the simulated network they cross, the session's cancellation
// token, and the transfer granularity. Fault knobs ride on the channel
// (its attached FaultInjector); retry/failover policy lives above this
// boundary, in the executor.
struct WrapperContext {
  net::DelayChannel* channel = nullptr;
  BlockingQueue<rdf::Binding>* out = nullptr;
  CancellationToken token;
  // Rows per shipped morsel; 1 reproduces the legacy row-at-a-time path.
  size_t batch_size = kDefaultBatchSize;
};

// Ships wrapper answers in morsels: rows accumulate in a buffer that is
// flushed as one DelayChannel::TransferBatch (network accounting for the
// whole morsel) followed by one PushBatch into the output queue. The
// flush threshold ramps 1, 2, 4, ... up to `batch_size`, so the first
// answers still leave with row-at-a-time latency while steady-state
// traffic pays one queue round-trip per morsel. batch_size 1 is exactly
// the legacy per-row behaviour.
class BatchEmitter {
 public:
  explicit BatchEmitter(const WrapperContext& ctx)
      : channel_(ctx.channel),
        out_(ctx.out),
        token_(ctx.token),
        cap_(std::max<size_t>(1, ctx.batch_size)) {}

  // Adds one answer. Returns false when the producer must stop: the
  // downstream is gone (cancelled or closed) or the network faulted
  // mid-batch — Finish() carries the fault status.
  bool Emit(rdf::Binding row) {
    if (!open_) return false;
    buffer_.push_back(std::move(row));
    if (buffer_.size() >= threshold_) {
      Flush();
      threshold_ = std::min(threshold_ * 2, cap_);
    }
    return open_;
  }

  // Ships the trailing partial batch (partial-batch flush on producer
  // close). Returns the first network fault observed, or OK; a rejected
  // push is not an error — the session derives cancellation status from
  // the token.
  Status Finish() {
    if (open_ && !buffer_.empty()) Flush();
    return fault_;
  }

 private:
  void Flush() {
    size_t delivered = 0;
    fault_ = channel_->TransferBatch(buffer_.size(), token_, &delivered);
    // On a mid-batch fault only the messages before it were sent; the
    // faulted row and everything after it drop, as in the row-at-a-time
    // path where the fault aborts the scan before the push.
    if (delivered < buffer_.size()) buffer_.resize(delivered);
    if (!out_->PushBatch(&buffer_, token_)) open_ = false;
    if (!fault_.ok()) open_ = false;
    buffer_.clear();
  }

  net::DelayChannel* channel_;
  BlockingQueue<rdf::Binding>* out_;
  CancellationToken token_;
  const size_t cap_;
  size_t threshold_ = 1;
  std::vector<rdf::Binding> buffer_;
  Status fault_;
  bool open_ = true;
};

class SourceWrapper {
 public:
  virtual ~SourceWrapper() = default;

  virtual const std::string& id() const = 0;
  virtual SourceKind kind() const = 0;

  // RDF molecule templates this source can answer (source description).
  virtual std::vector<mapping::RdfMt> Molecules() const = 0;

  // --- physical-design introspection (what the paper's heuristics read) ---

  // Is the relational attribute reached by `predicate` on `class_iri`
  // backed by an index? RDF sources report false (not applicable).
  virtual bool IsPredicateAttributeIndexed(
      const std::string& /*class_iri*/,
      const std::string& /*predicate*/) const {
    return false;
  }

  // Is the subject key of `class_iri` indexed (the PK, per the paper's
  // layout assumption)?
  virtual bool IsSubjectKeyIndexed(const std::string& /*class_iri*/) const {
    return false;
  }

  // Can this source execute a merged multi-star sub-query (Heuristic 1)?
  virtual bool SupportsJoinPushdown() const { return false; }

  // May stars `a` and `b` be merged into one sub-query joined on `var`?
  // Relational wrappers verify that both sides construct the shared
  // variable's terms the same way (same IRI template / literal datatype),
  // so that raw column equality in SQL coincides with RDF term equality.
  virtual bool CanPushDownJoin(const StarSubQuery& /*a*/,
                               const StarSubQuery& /*b*/,
                               const std::string& /*var*/) const {
    return SupportsJoinPushdown();
  }

  // Scans the source and fills `out` with its statistics (class/entity
  // counts, per-attribute NDV and histograms) for the cost-based planner.
  // The default yields an empty profile: the estimator then falls back to
  // molecule cardinalities. Called offline (engine AnalyzeSources), never
  // on the query path.
  virtual Status CollectStatistics(const stats::AnalyzeOptions& options,
                                   stats::SourceStats* out) const {
    (void)options;
    out->source_id = id();
    out->classes.clear();
    return Status::OK();
  }

  // Version of the data this source serves. The sub-answer cache keys leaf
  // results on it, so a wrapper whose backing store can change underneath
  // the engine should bump the version on every mutation — cached
  // sub-answers from older versions then stop matching. The bundled
  // wrappers are read-only at query time, so the constant default is
  // correct for them.
  virtual uint64_t DataVersion() const { return 0; }

  // --- execution ---

  // Executes `subquery`, shipping answers into `ctx.out` in morsels of up
  // to `ctx.batch_size` rows (BatchEmitter does the bookkeeping); every
  // answer is accounted on `ctx.channel` (network simulation + fault
  // injection). Blocking; the engine runs it on a dedicated thread and
  // closes `ctx.out` afterwards. Implementations must stop early when the
  // emitter reports a dead downstream (cancellation closes `ctx.out`) and
  // should poll `ctx.token` between answers, returning Status::OK() when
  // stopping because of cancellation — the session derives the terminal
  // kCancelled / kDeadlineExceeded status from the token itself.
  virtual Status Execute(const SubQuery& subquery,
                         const WrapperContext& ctx) = 0;
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_WRAPPER_H_
