// SourceWrapper: the mediator/wrapper boundary (Wiederhold architecture).
// One wrapper fronts one Data Lake source; the engine talks to sources only
// through this interface. Implementations live in src/wrapper/.

#ifndef LAKEFED_FED_WRAPPER_H_
#define LAKEFED_FED_WRAPPER_H_

#include <string>
#include <vector>

#include "common/blocking_queue.h"
#include "common/status.h"
#include "fed/subquery.h"
#include "mapping/rdf_mt.h"
#include "net/network.h"
#include "rdf/bgp.h"
#include "stats/analyze.h"
#include "stats/stats_catalog.h"

namespace lakefed::fed {

class SourceWrapper {
 public:
  virtual ~SourceWrapper() = default;

  virtual const std::string& id() const = 0;
  virtual SourceKind kind() const = 0;

  // RDF molecule templates this source can answer (source description).
  virtual std::vector<mapping::RdfMt> Molecules() const = 0;

  // --- physical-design introspection (what the paper's heuristics read) ---

  // Is the relational attribute reached by `predicate` on `class_iri`
  // backed by an index? RDF sources report false (not applicable).
  virtual bool IsPredicateAttributeIndexed(
      const std::string& /*class_iri*/,
      const std::string& /*predicate*/) const {
    return false;
  }

  // Is the subject key of `class_iri` indexed (the PK, per the paper's
  // layout assumption)?
  virtual bool IsSubjectKeyIndexed(const std::string& /*class_iri*/) const {
    return false;
  }

  // Can this source execute a merged multi-star sub-query (Heuristic 1)?
  virtual bool SupportsJoinPushdown() const { return false; }

  // May stars `a` and `b` be merged into one sub-query joined on `var`?
  // Relational wrappers verify that both sides construct the shared
  // variable's terms the same way (same IRI template / literal datatype),
  // so that raw column equality in SQL coincides with RDF term equality.
  virtual bool CanPushDownJoin(const StarSubQuery& /*a*/,
                               const StarSubQuery& /*b*/,
                               const std::string& /*var*/) const {
    return SupportsJoinPushdown();
  }

  // Scans the source and fills `out` with its statistics (class/entity
  // counts, per-attribute NDV and histograms) for the cost-based planner.
  // The default yields an empty profile: the estimator then falls back to
  // molecule cardinalities. Called offline (engine AnalyzeSources), never
  // on the query path.
  virtual Status CollectStatistics(const stats::AnalyzeOptions& options,
                                   stats::SourceStats* out) const {
    (void)options;
    out->source_id = id();
    out->classes.clear();
    return Status::OK();
  }

  // --- execution ---

  // Executes `subquery`, pushing one solution mapping per answer into `out`.
  // Every answer retrieval passes through `channel` (network simulation).
  // Blocking; the engine runs it on a dedicated thread and closes `out`
  // afterwards. Implementations must stop early when Push returns false
  // (downstream cancelled).
  virtual Status Execute(const SubQuery& subquery,
                         net::DelayChannel* channel,
                         BlockingQueue<rdf::Binding>* out) = 0;

  // Cancellation-aware variant: the session's executor always calls this
  // one. Implementations should poll `token` between answers, pass it to
  // channel->Transfer and out->Push, and return Status::OK() when stopping
  // because of cancellation (the session derives the terminal kCancelled /
  // kDeadlineExceeded status from the token itself). The default delegates
  // to the legacy overload above; legacy wrappers still tear down promptly
  // because cancellation closes `out`, making Push return false.
  virtual Status Execute(const SubQuery& subquery, net::DelayChannel* channel,
                         BlockingQueue<rdf::Binding>* out,
                         const CancellationToken& token) {
    (void)token;
    return Execute(subquery, channel, out);
  }
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_WRAPPER_H_
