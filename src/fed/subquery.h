// Star-shaped sub-queries (SSQs) and the per-source execution units of the
// federated engine.
//
// A SPARQL query is decomposed into SSQs — maximal groups of triple patterns
// sharing one subject [Vidal et al. 2010]. A SubQuery is what a wrapper
// executes: one SSQ, or several merged by Heuristic 1 (join pushdown), plus
// the filters whose placement Heuristic 2 decided.

#ifndef LAKEFED_FED_SUBQUERY_H_
#define LAKEFED_FED_SUBQUERY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rdf/bgp.h"
#include "sparql/filter_expr.h"

namespace lakefed::fed {

enum class SourceKind { kRdf, kRelational };

std::string SourceKindToString(SourceKind kind);

// Where a filter is evaluated (Heuristic 2's decision).
enum class FilterPlacement { kEngine, kSource };

struct PlacedFilter {
  sparql::FilterExprPtr filter;
  FilterPlacement placement = FilterPlacement::kEngine;
  std::string reason;  // human-readable justification, shown by EXPLAIN
};

struct StarSubQuery {
  rdf::PatternNode subject;
  std::vector<rdf::TriplePattern> patterns;  // all share `subject`
  // Filters whose variables all belong to this star.
  std::vector<sparql::FilterExprPtr> filters;
  // Object of a constant rdf:type pattern, when present.
  std::optional<std::string> class_iri;

  // Distinct variables of the star, subject first.
  std::vector<std::string> Variables() const;
  // IRIs of constant predicates (used for source selection).
  std::vector<std::string> ConstantPredicates() const;
  // The predicate whose object position binds `var`, if any.
  std::optional<std::string> PredicateOfObjectVar(const std::string& var)
      const;
  bool SubjectIsVar(const std::string& var) const {
    return subject.is_var && subject.var == var;
  }

  std::string ToString() const;
};

struct SubQuery {
  std::string source_id;
  std::vector<StarSubQuery> stars;    // size > 1 => Heuristic 1 merged
  std::vector<PlacedFilter> filters;  // all filters over these stars
  // IN-instantiations injected by a dependent join: var -> allowed terms.
  std::map<std::string, std::vector<rdf::Term>> instantiations;
  // When set, relational wrappers must emulate an unoptimized merged-SSQ
  // translation (see PlanOptions::naive_sql_translation).
  bool naive_translation = false;

  // Distinct variables produced by the wrapper.
  std::vector<std::string> Variables() const;
  // Filters the wrapper must evaluate (placement == kSource).
  std::vector<sparql::FilterExprPtr> SourceFilters() const;
  // Filters the engine evaluates above the service scan.
  std::vector<sparql::FilterExprPtr> EngineFilters() const;

  bool SharesVariableWith(const SubQuery& other,
                          std::vector<std::string>* shared) const;

  std::string ToString() const;
};

// Stable identity of a sub-query for the runtime statistics feedback loop
// and the sub-answer cache: source, star structure, source-placed filters
// and — when present — a digest of the dependent-join instantiations.
// Without the instantiation digest a bound probe leaf (a handful of IN
// terms) would fold its tiny actuals into the same calibration key as the
// unbound leaf, poisoning Calibrated() estimates; with it, every distinct
// probe binding set calibrates (and caches) independently. Unbound
// sub-queries keep the exact historical key bytes.
std::string SubQueryStatsKey(const SubQuery& sq);

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_SUBQUERY_H_
