#include "fed/meta_source.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

#include "fed/engine.h"
#include "rdf/bgp.h"
#include "sparql/filter_expr.h"

namespace lakefed::fed {

namespace {

constexpr char kSubjectRoot[] = "http://lakefed.io/sys/";

rdf::Term SysIri(const std::string& local) {
  return rdf::Term::Iri(std::string(kSysNamespace) + local);
}

rdf::Term Subject(const std::string& table, const std::string& key) {
  return rdf::Term::Iri(std::string(kSubjectRoot) + table + "/" + key);
}

rdf::Term TypeIri() { return rdf::Term::Iri(rdf::kRdfType); }

rdf::Term Lit(const std::string& s) { return rdf::Term::Literal(s); }

rdf::Term Lit(uint64_t v) { return Lit(std::to_string(v)); }

rdf::Term Lit(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return Lit(std::string(buf));
}

// class local name -> table name ("Metric" -> "metrics").
const std::map<std::string, std::string>& ClassToTable() {
  static const std::map<std::string, std::string> kMap = {
      {"Metric", "metrics"},   {"Source", "sources"}, {"Query", "queries"},
      {"Cache", "cache"},      {"Scheduler", "scheduler"},
  };
  return kMap;
}

std::string TableClass(const std::string& table) {
  for (const auto& [cls, t] : ClassToTable()) {
    if (t == table) return std::string(kSysNamespace) + cls;
  }
  return "";
}

}  // namespace

MetaSource::MetaSource(const FederatedEngine* engine, Providers providers)
    : engine_(engine), providers_(std::move(providers)) {}

const std::vector<std::string>& MetaSource::Tables() {
  static const std::vector<std::string> kTables = {
      "metrics", "sources", "queries", "cache", "scheduler"};
  return kTables;
}

std::vector<mapping::RdfMt> MetaSource::Molecules() const {
  auto molecule = [this](const std::string& cls,
                         std::set<std::string> locals) {
    mapping::RdfMt mt;
    mt.class_iri = std::string(kSysNamespace) + cls;
    mt.predicates.insert(rdf::kRdfType);
    for (const std::string& local : locals) {
      mt.predicates.insert(std::string(kSysNamespace) + local);
    }
    mt.sources = {id_};
    // Nominal: the tables are tiny, rebuilt per query; this only seeds the
    // mediator's join ordering when sys stars join data stars.
    mt.cardinality = 64;
    return mt;
  };
  return {
      molecule("Metric", {"name", "kind", "value", "count", "sum", "min",
                          "max", "p50", "p95", "p99"}),
      molecule("Source",
               {"id", "kind", "classes", "cardinality", "breakerState",
                "latencySamples", "latencyP50", "latencyP95", "latencyP99",
                "statsEpoch", "entities", "attributes", "ndv"}),
      molecule("Query", {"fingerprint", "tenant", "status", "totalMs",
                         "firstRowMs", "rows", "slow", "partial",
                         "wallClockS", "count"}),
      molecule("Cache", {"name", "hits", "misses", "inserts", "evictions",
                         "invalidations", "entries", "bytes", "hitRate"}),
      molecule("Scheduler",
               {"name", "workers", "ioThreads", "steps", "steals", "wakes",
                "ioJobs", "yields", "blocks", "done", "parks", "unparks",
                "injectorDepth", "ioQueueDepth", "worker", "dequeDepth"}),
  };
}

void MetaSource::PopulateMetrics(rdf::TripleStore* store) const {
  const obs::MetricsSnapshot snapshot = engine_->MetricsSnapshot();
  auto row = [&](const std::string& name, const char* kind) {
    rdf::Term s = Subject("metric", name);
    store->Add(s, TypeIri(), SysIri("Metric"));
    store->Add(s, SysIri("name"), Lit(name));
    store->Add(s, SysIri("kind"), Lit(std::string(kind)));
    return s;
  };
  for (const auto& c : snapshot.counters) {
    store->Add(row(c.name, "counter"), SysIri("value"), Lit(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    store->Add(row(g.name, "gauge"), SysIri("value"),
               Lit(std::to_string(g.value)));
  }
  for (const auto& h : snapshot.histograms) {
    rdf::Term s = row(h.name, "histogram");
    store->Add(s, SysIri("count"), Lit(h.count));
    store->Add(s, SysIri("sum"), Lit(h.sum));
    store->Add(s, SysIri("min"), Lit(h.min));
    store->Add(s, SysIri("max"), Lit(h.max));
    store->Add(s, SysIri("p50"), Lit(h.p50));
    store->Add(s, SysIri("p95"), Lit(h.p95));
    store->Add(s, SysIri("p99"), Lit(h.p99));
  }
}

void MetaSource::PopulateSources(rdf::TripleStore* store) const {
  // Molecule coverage per source, from the engine's catalog.
  struct Coverage {
    uint64_t classes = 0;
    uint64_t cardinality = 0;
  };
  std::map<std::string, Coverage> coverage;
  for (const auto& [cls, mt] : engine_->catalog().molecules()) {
    for (const std::string& source : mt.sources) {
      if (source == id_) continue;  // the meta-source itself stays out
      Coverage& c = coverage[source];
      ++c.classes;
      c.cardinality += mt.cardinality;
    }
  }
  const auto latency = engine_->latency()->Snapshot();
  const stats::StatsCatalog* stats = engine_->stats_catalog();
  for (const auto& [source, cov] : coverage) {
    rdf::Term s = Subject("source", source);
    store->Add(s, TypeIri(), SysIri("Source"));
    store->Add(s, SysIri("id"), Lit(source));
    const SourceWrapper* wrapper = engine_->wrapper(source);
    if (wrapper != nullptr) {
      store->Add(s, SysIri("kind"), Lit(SourceKindToString(wrapper->kind())));
    }
    store->Add(s, SysIri("classes"), Lit(cov.classes));
    store->Add(s, SysIri("cardinality"), Lit(cov.cardinality));
    store->Add(s, SysIri("breakerState"),
               Lit(BreakerStateToString(engine_->breakers()->state(source))));
    auto lat = latency.find(source);
    if (lat != latency.end()) {
      store->Add(s, SysIri("latencySamples"), Lit(lat->second.samples));
      store->Add(s, SysIri("latencyP50"), Lit(lat->second.p50));
      store->Add(s, SysIri("latencyP95"), Lit(lat->second.p95));
      store->Add(s, SysIri("latencyP99"), Lit(lat->second.p99));
    }
    if (stats != nullptr) {
      store->Add(s, SysIri("statsEpoch"), Lit(stats->epoch()));
      if (const stats::SourceStats* ss = stats->FindSource(source)) {
        uint64_t entities = 0, attributes = 0, ndv = 0;
        for (const auto& [cls, cs] : ss->classes) {
          entities += cs.entity_count;
          attributes += cs.attributes.size();
          for (const auto& [pred, as] : cs.attributes) {
            ndv += as.distinct_objects;
          }
        }
        store->Add(s, SysIri("entities"), Lit(entities));
        store->Add(s, SysIri("attributes"), Lit(attributes));
        store->Add(s, SysIri("ndv"), Lit(ndv));
      }
    }
  }
}

void MetaSource::PopulateQueries(rdf::TripleStore* store) const {
  // Live-session count, derived from the engine counters: sessions created
  // minus sessions finished (ok + error). Includes the session executing
  // this very sub-query.
  const obs::MetricsSnapshot snapshot = engine_->MetricsSnapshot();
  auto counter = [&](const char* name) -> uint64_t {
    const auto* c = snapshot.FindCounter(name);
    return c == nullptr ? 0 : c->value;
  };
  const uint64_t sessions = counter("engine.sessions");
  const uint64_t finished =
      counter("engine.queries_ok") + counter("engine.queries_error");
  rdf::Term active = Subject("query", "active");
  store->Add(active, TypeIri(), SysIri("Query"));
  store->Add(active, SysIri("status"), Lit(std::string("active")));
  store->Add(active, SysIri("count"),
             Lit(sessions > finished ? sessions - finished : 0));

  const obs::QueryLog* log = engine_->query_log();
  if (log == nullptr) return;
  for (const obs::QueryLogRecord& r : log->Snapshot()) {
    rdf::Term s = Subject("query", std::to_string(r.id));
    store->Add(s, TypeIri(), SysIri("Query"));
    store->Add(s, SysIri("fingerprint"), Lit(r.fingerprint));
    if (!r.tenant.empty()) store->Add(s, SysIri("tenant"), Lit(r.tenant));
    store->Add(s, SysIri("status"), Lit(r.status));
    store->Add(s, SysIri("totalMs"), Lit(r.total_ms));
    store->Add(s, SysIri("firstRowMs"), Lit(r.first_row_ms));
    store->Add(s, SysIri("rows"), Lit(r.rows));
    store->Add(s, SysIri("slow"), Lit(std::string(r.slow ? "true" : "false")));
    store->Add(s, SysIri("partial"),
               Lit(std::string(r.partial ? "true" : "false")));
    store->Add(s, SysIri("wallClockS"), Lit(r.wall_clock_s));
  }
}

void MetaSource::PopulateCache(rdf::TripleStore* store) const {
  auto row = [&](const std::string& name, const CacheStats& cs) {
    rdf::Term s = Subject("cache", name);
    store->Add(s, TypeIri(), SysIri("Cache"));
    store->Add(s, SysIri("name"), Lit(name));
    store->Add(s, SysIri("hits"), Lit(cs.hits));
    store->Add(s, SysIri("misses"), Lit(cs.misses));
    store->Add(s, SysIri("inserts"), Lit(cs.inserts));
    store->Add(s, SysIri("evictions"), Lit(cs.evictions));
    store->Add(s, SysIri("invalidations"), Lit(cs.invalidations));
    store->Add(s, SysIri("entries"), Lit(cs.entries));
    store->Add(s, SysIri("bytes"), Lit(cs.bytes));
    const uint64_t lookups = cs.hits + cs.misses;
    store->Add(s, SysIri("hitRate"),
               Lit(lookups == 0 ? 0.0
                                : static_cast<double>(cs.hits) /
                                      static_cast<double>(lookups)));
  };
  row("plan", engine_->plan_cache()->plan_stats());
  row("parsed", engine_->plan_cache()->parsed_stats());
  row("answer", engine_->answer_cache()->stats());
}

void MetaSource::PopulateScheduler(rdf::TripleStore* store) const {
  if (providers_.scheduler == nullptr) return;
  const SchedulerInfo info = providers_.scheduler();
  rdf::Term s = Subject("scheduler", "pool");
  store->Add(s, TypeIri(), SysIri("Scheduler"));
  store->Add(s, SysIri("name"), Lit(std::string("pool")));
  store->Add(s, SysIri("workers"), Lit(static_cast<uint64_t>(info.workers)));
  store->Add(s, SysIri("ioThreads"),
             Lit(static_cast<uint64_t>(info.io_threads)));
  store->Add(s, SysIri("steps"), Lit(info.steps));
  store->Add(s, SysIri("steals"), Lit(info.steals));
  store->Add(s, SysIri("wakes"), Lit(info.wakes));
  store->Add(s, SysIri("ioJobs"), Lit(info.io_jobs));
  store->Add(s, SysIri("yields"), Lit(info.yields));
  store->Add(s, SysIri("blocks"), Lit(info.blocks));
  store->Add(s, SysIri("done"), Lit(info.done));
  store->Add(s, SysIri("parks"), Lit(info.parks));
  store->Add(s, SysIri("unparks"), Lit(info.unparks));
  store->Add(s, SysIri("injectorDepth"),
             Lit(static_cast<uint64_t>(info.injector_depth)));
  store->Add(s, SysIri("ioQueueDepth"),
             Lit(static_cast<uint64_t>(info.io_queue_depth)));
  for (size_t i = 0; i < info.deque_depths.size(); ++i) {
    rdf::Term w = Subject("scheduler", "worker/" + std::to_string(i));
    store->Add(w, TypeIri(), SysIri("Scheduler"));
    store->Add(w, SysIri("name"), Lit("worker/" + std::to_string(i)));
    store->Add(w, SysIri("worker"), Lit(static_cast<uint64_t>(i)));
    store->Add(w, SysIri("dequeDepth"),
               Lit(static_cast<uint64_t>(info.deque_depths[i])));
  }
}

void MetaSource::BuildSnapshot(const std::string& table,
                               rdf::TripleStore* store) const {
  const bool all = table.empty();
  if (all || table == "metrics") PopulateMetrics(store);
  if (all || table == "sources") PopulateSources(store);
  if (all || table == "queries") PopulateQueries(store);
  if (all || table == "cache") PopulateCache(store);
  if (all || table == "scheduler") PopulateScheduler(store);
}

Status MetaSource::Execute(const SubQuery& subquery,
                           const WrapperContext& ctx) {
  // Build only the tables the stars name; a star without a constant sys
  // class falls back to the full snapshot.
  std::set<std::string> tables;
  bool all = false;
  for (const StarSubQuery& star : subquery.stars) {
    std::string table;
    if (star.class_iri.has_value()) {
      const std::string& cls = *star.class_iri;
      const std::string ns(kSysNamespace);
      if (cls.rfind(ns, 0) == 0) {
        auto it = ClassToTable().find(cls.substr(ns.size()));
        if (it != ClassToTable().end()) table = it->second;
      }
    }
    if (table.empty()) {
      all = true;
    } else {
      tables.insert(table);
    }
  }
  rdf::TripleStore store;
  if (all) {
    BuildSnapshot("", &store);
  } else {
    for (const std::string& table : tables) BuildSnapshot(table, &store);
  }

  // From here on this is the standard RDF wrapper evaluation (see
  // wrapper/rdf_wrapper.cc): BGP scan with instantiation sets and source
  // filters, projected rows shipped through the emitter.
  std::vector<rdf::TriplePattern> patterns;
  for (const StarSubQuery& star : subquery.stars) {
    patterns.insert(patterns.end(), star.patterns.begin(),
                    star.patterns.end());
  }
  if (patterns.empty()) {
    return Status::InvalidArgument("empty sub-query for source " + id_);
  }
  std::vector<sparql::FilterExprPtr> filters = subquery.SourceFilters();
  std::map<std::string, std::unordered_set<std::string>> allowed;
  for (const auto& [var, terms] : subquery.instantiations) {
    auto& set = allowed[var];
    for (const rdf::Term& t : terms) set.insert(t.ToString());
  }
  std::vector<std::string> variables = subquery.Variables();
  BatchEmitter emitter(ctx);
  Status scan = rdf::EvaluateBgpVisit(
      store, patterns, [&](const rdf::Binding& binding) {
        if (ctx.token.IsCancelled()) return false;
        for (const auto& [var, set] : allowed) {
          auto it = binding.find(var);
          if (it == binding.end() || set.count(it->second.ToString()) == 0) {
            return true;
          }
        }
        for (const sparql::FilterExprPtr& filter : filters) {
          Result<bool> pass = filter->EvalBool(binding);
          if (!pass.ok() || !*pass) return true;
        }
        rdf::Binding projected;
        for (const std::string& var : variables) {
          auto it = binding.find(var);
          if (it != binding.end()) projected.emplace(var, it->second);
        }
        return emitter.Emit(std::move(projected));
      });
  Status fault = emitter.Finish();
  LAKEFED_RETURN_NOT_OK(scan);
  return fault;
}

std::string MetaSource::RenderTable(const std::string& table) const {
  const std::string class_iri = TableClass(table);
  if (class_iri.empty()) {
    std::string names;
    for (const std::string& t : Tables()) {
      names += names.empty() ? t : ", " + t;
    }
    return "unknown sys table '" + table + "' (tables: " + names + ")\n";
  }
  rdf::TripleStore store;
  BuildSnapshot(table, &store);
  std::ostringstream out;
  const std::string ns(kSysNamespace);
  const std::string root = std::string(kSubjectRoot);
  std::vector<rdf::Triple> rows =
      store.Match(std::nullopt, rdf::Term::Iri(rdf::kRdfType),
                  rdf::Term::Iri(class_iri));
  if (rows.empty()) {
    out << "sys." << table << ": empty\n";
    return out.str();
  }
  for (const rdf::Triple& row : rows) {
    std::string key = row.subject.value();
    if (key.rfind(root, 0) == 0) key = key.substr(root.size());
    out << key << "\n";
    for (const rdf::Triple& t :
         store.Match(row.subject, std::nullopt, std::nullopt)) {
      if (t.predicate.value() == rdf::kRdfType) continue;
      std::string pred = t.predicate.value();
      if (pred.rfind(ns, 0) == 0) pred = pred.substr(ns.size());
      out << "  " << pred << " = " << t.object.value() << "\n";
    }
  }
  return out.str();
}

}  // namespace lakefed::fed
