#include "fed/decomposer.h"

#include <algorithm>
#include <map>

#include "rdf/term.h"

namespace lakefed::fed {
namespace {

// Stable grouping key of a subject node.
std::string SubjectKey(const rdf::PatternNode& subject) {
  return subject.is_var ? "?" + subject.var : subject.term.ToString();
}

}  // namespace

Result<DecomposedQuery> Decompose(const sparql::SelectQuery& query,
                                  DecompositionKind kind) {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }
  DecomposedQuery out;
  std::map<std::string, size_t> star_of_subject;

  for (const rdf::TriplePattern& pattern : query.patterns) {
    size_t star_index;
    if (kind == DecompositionKind::kTripleBased) {
      // One sub-query per triple pattern.
      StarSubQuery star;
      star.subject = pattern.subject;
      star_index = out.stars.size();
      out.stars.push_back(std::move(star));
    } else {
      std::string key = SubjectKey(pattern.subject);
      auto it = star_of_subject.find(key);
      if (it == star_of_subject.end()) {
        StarSubQuery star;
        star.subject = pattern.subject;
        star_of_subject[key] = out.stars.size();
        out.stars.push_back(std::move(star));
        it = star_of_subject.find(key);
      }
      star_index = it->second;
    }
    StarSubQuery& star = out.stars[star_index];
    star.patterns.push_back(pattern);
    // Class detection: constant rdf:type with a constant IRI object.
    if (!pattern.predicate.is_var &&
        pattern.predicate.term == rdf::Term::Iri(rdf::kRdfType) &&
        !pattern.object.is_var && pattern.object.term.is_iri()) {
      star.class_iri = pattern.object.term.value();
    }
  }

  // Filter association: each conjunct goes to the star covering all its
  // variables; conjuncts spanning stars stay global. When several stars
  // cover a conjunct (rare), the one with the fewest variables wins.
  for (const sparql::FilterExprPtr& filter : query.filters) {
    for (const sparql::FilterExprPtr& conjunct :
         sparql::SplitFilterConjuncts(filter)) {
      std::vector<std::string> vars;
      conjunct->CollectVariables(&vars);
      StarSubQuery* best = nullptr;
      size_t best_size = 0;
      for (StarSubQuery& star : out.stars) {
        std::vector<std::string> star_vars = star.Variables();
        bool covers = !vars.empty();
        for (const std::string& v : vars) {
          if (std::find(star_vars.begin(), star_vars.end(), v) ==
              star_vars.end()) {
            covers = false;
            break;
          }
        }
        if (covers && (best == nullptr || star_vars.size() < best_size)) {
          best = &star;
          best_size = star_vars.size();
        }
      }
      if (best != nullptr) {
        best->filters.push_back(conjunct);
      } else {
        out.global_filters.push_back(conjunct);
      }
    }
  }

  // OPTIONAL groups: each must collapse to a single star.
  for (const sparql::OptionalGroup& group : query.optionals) {
    StarSubQuery star;
    for (const rdf::TriplePattern& pattern : group.patterns) {
      if (star.patterns.empty()) {
        star.subject = pattern.subject;
      } else if (SubjectKey(pattern.subject) != SubjectKey(star.subject)) {
        return Status::NotImplemented(
            "OPTIONAL groups spanning several subjects are not supported by "
            "the federated engine");
      }
      star.patterns.push_back(pattern);
      if (!pattern.predicate.is_var &&
          pattern.predicate.term == rdf::Term::Iri(rdf::kRdfType) &&
          !pattern.object.is_var && pattern.object.term.is_iri()) {
        star.class_iri = pattern.object.term.value();
      }
    }
    std::vector<std::string> star_vars = star.Variables();
    for (const sparql::FilterExprPtr& filter : group.filters) {
      std::vector<std::string> vars;
      filter->CollectVariables(&vars);
      for (const std::string& v : vars) {
        if (std::find(star_vars.begin(), star_vars.end(), v) ==
            star_vars.end()) {
          return Status::NotImplemented(
              "OPTIONAL filters over outer variables are not supported by "
              "the federated engine");
        }
      }
      star.filters.push_back(filter);
    }
    out.optional_stars.push_back(std::move(star));
  }
  return out;
}

}  // namespace lakefed::fed
