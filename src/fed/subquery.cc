#include "fed/subquery.h"

#include <algorithm>
#include <cstdint>
#include <set>

namespace lakefed::fed {

std::string SourceKindToString(SourceKind kind) {
  return kind == SourceKind::kRdf ? "RDF" : "RDB";
}

std::vector<std::string> StarSubQuery::Variables() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  auto add = [&](const std::string& v) {
    if (seen.insert(v).second) out.push_back(v);
  };
  if (subject.is_var) add(subject.var);
  for (const rdf::TriplePattern& p : patterns) {
    for (const std::string& v : p.Variables()) add(v);
  }
  return out;
}

std::vector<std::string> StarSubQuery::ConstantPredicates() const {
  std::vector<std::string> out;
  for (const rdf::TriplePattern& p : patterns) {
    if (!p.predicate.is_var && p.predicate.term.is_iri()) {
      out.push_back(p.predicate.term.value());
    }
  }
  return out;
}

std::optional<std::string> StarSubQuery::PredicateOfObjectVar(
    const std::string& var) const {
  for (const rdf::TriplePattern& p : patterns) {
    if (p.object.is_var && p.object.var == var && !p.predicate.is_var &&
        p.predicate.term.is_iri()) {
      return p.predicate.term.value();
    }
  }
  return std::nullopt;
}

std::string StarSubQuery::ToString() const {
  std::string out = "SSQ(" + subject.ToString() + ") {";
  for (const rdf::TriplePattern& p : patterns) {
    out += " " + p.ToString();
  }
  for (const sparql::FilterExprPtr& f : filters) {
    out += " FILTER " + f->ToString();
  }
  return out + " }";
}

std::vector<std::string> SubQuery::Variables() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const StarSubQuery& star : stars) {
    for (const std::string& v : star.Variables()) {
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

std::vector<sparql::FilterExprPtr> SubQuery::SourceFilters() const {
  std::vector<sparql::FilterExprPtr> out;
  for (const PlacedFilter& pf : filters) {
    if (pf.placement == FilterPlacement::kSource) out.push_back(pf.filter);
  }
  return out;
}

std::vector<sparql::FilterExprPtr> SubQuery::EngineFilters() const {
  std::vector<sparql::FilterExprPtr> out;
  for (const PlacedFilter& pf : filters) {
    if (pf.placement == FilterPlacement::kEngine) out.push_back(pf.filter);
  }
  return out;
}

bool SubQuery::SharesVariableWith(const SubQuery& other,
                                  std::vector<std::string>* shared) const {
  std::vector<std::string> mine = Variables();
  std::vector<std::string> theirs = other.Variables();
  shared->clear();
  for (const std::string& v : mine) {
    if (std::find(theirs.begin(), theirs.end(), v) != theirs.end()) {
      shared->push_back(v);
    }
  }
  return !shared->empty();
}

std::string SubQuery::ToString() const {
  std::string out = "Service[" + source_id + "]";
  if (stars.size() > 1) {
    out += " (merged " + std::to_string(stars.size()) + " SSQs, H1)";
  }
  for (const StarSubQuery& star : stars) out += "\n    " + star.ToString();
  for (const PlacedFilter& pf : filters) {
    out += "\n    FILTER " + pf.filter->ToString() + " @" +
           (pf.placement == FilterPlacement::kSource ? "source" : "engine");
    if (!pf.reason.empty()) out += " (" + pf.reason + ")";
  }
  for (const auto& [var, terms] : instantiations) {
    out += "\n    ?" + var + " IN [" + std::to_string(terms.size()) +
           " terms]";
  }
  return out;
}

namespace {

// FNV-1a over the bytes of `s`, folded into `h`.
uint64_t FoldFnv1a(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string SubQueryStatsKey(const SubQuery& sq) {
  std::string key = sq.source_id;
  for (const StarSubQuery& star : sq.stars) key += "|" + star.ToString();
  for (const sparql::FilterExprPtr& f : sq.SourceFilters()) {
    key += "|F:" + f->ToString();
  }
  if (!sq.instantiations.empty()) {
    // Digest the actual term values (SubQuery::ToString only renders term
    // *counts*, which would collide distinct probe bindings). The map is
    // ordered, so the digest is deterministic.
    uint64_t digest = 14695981039346656037ULL;
    for (const auto& [var, terms] : sq.instantiations) {
      digest = FoldFnv1a(digest, var);
      for (const rdf::Term& t : terms) digest = FoldFnv1a(digest, t.ToString());
    }
    key += "|I:" + std::to_string(sq.instantiations.size()) + ":" +
           std::to_string(digest);
  }
  return key;
}

}  // namespace lakefed::fed
