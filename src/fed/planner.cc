#include "fed/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <set>

#include "fed/breaker.h"
#include "fed/decomposer.h"
#include "obs/span.h"
#include "stats/estimator.h"
#include "stats/stats_catalog.h"

namespace lakefed::fed {
namespace {

// Candidate sources for a star via RDF-MT predicate containment.
std::vector<std::string> SelectSources(const StarSubQuery& star,
                                       const mapping::RdfMtCatalog& catalog) {
  std::vector<std::string> predicates = star.ConstantPredicates();
  // rdf:type is implied by every molecule; drop it from the containment
  // check only if the star's class constrains the choice anyway.
  std::vector<const mapping::RdfMt*> molecules =
      catalog.Covering(star.class_iri, predicates);
  std::vector<std::string> sources;
  std::set<std::string> seen;
  for (const mapping::RdfMt* m : molecules) {
    for (const std::string& s : m->sources) {
      if (seen.insert(s).second) sources.push_back(s);
    }
  }
  return sources;
}

// Estimated number of rows a sub-query ships to the engine, derived from
// the molecule cardinalities in the source descriptions (MULDER-style) and
// shrunk by instantiations and source-placed filters. Smaller = more
// selective = joined earlier.
double EstimateTransferredRows(const SubQuery& sq,
                               const mapping::RdfMtCatalog& catalog) {
  constexpr double kDefaultCardinality = 1000;
  constexpr double kObjectConstantSelectivity = 0.1;
  constexpr double kSourceFilterSelectivity = 0.3;

  double rows = 0;
  for (const StarSubQuery& star : sq.stars) {
    double card = kDefaultCardinality;
    const mapping::RdfMt* molecule =
        star.class_iri.has_value() ? catalog.Find(*star.class_iri) : nullptr;
    if (molecule != nullptr) {
      card = std::max<double>(molecule->cardinality, 1.0);
    } else {
      auto covering = catalog.Covering(star.class_iri,
                                       star.ConstantPredicates());
      if (!covering.empty()) {
        card = 0;
        for (const mapping::RdfMt* m : covering) {
          card += static_cast<double>(m->cardinality);
        }
        card = std::max(card, 1.0);
      }
    }
    double selectivity = 1.0;
    if (!star.subject.is_var) selectivity = 1.0 / card;  // point lookup
    for (const rdf::TriplePattern& p : star.patterns) {
      bool is_type = !p.predicate.is_var &&
                     p.predicate.term == rdf::Term::Iri(rdf::kRdfType);
      if (!p.object.is_var && !is_type) {
        selectivity *= kObjectConstantSelectivity;
      }
    }
    // A merged (H1) sub-query ships the join result; approximate by the
    // largest participating star.
    rows = std::max(rows, card * selectivity);
  }
  for (const PlacedFilter& pf : sq.filters) {
    if (pf.placement == FilterPlacement::kSource) {
      rows *= kSourceFilterSelectivity;
    }
  }
  return std::max(rows, 1.0);
}

// --- cost-model helpers (PlanOptions::use_cost_model) ----------------------

// True if every variable of `filter` is produced by `star`.
bool StarCoversFilter(const StarSubQuery& star,
                      const sparql::FilterExpr& filter) {
  std::vector<std::string> fvars;
  filter.CollectVariables(&fvars);
  std::vector<std::string> svars = star.Variables();
  for (const std::string& v : fvars) {
    if (std::find(svars.begin(), svars.end(), v) == svars.end()) return false;
  }
  return true;
}

// Builds the estimator's fed-neutral view of one star routed to one source.
stats::PatternSpec SpecForStar(const StarSubQuery& star,
                               const std::string& source_id) {
  stats::PatternSpec spec;
  spec.source_id = source_id;
  if (star.class_iri.has_value()) spec.class_iri = *star.class_iri;
  spec.subject_is_constant = !star.subject.is_var;
  if (star.subject.is_var) spec.subject_var = star.subject.var;
  for (const rdf::TriplePattern& p : star.patterns) {
    if (p.predicate.is_var || !p.predicate.term.is_iri()) continue;
    const std::string& pred = p.predicate.term.value();
    if (pred == rdf::kRdfType) continue;
    stats::PatternPredicate pp;
    pp.predicate = pred;
    if (p.object.is_var) {
      spec.var_predicates.emplace(p.object.var, pred);
    } else {
      pp.object = p.object.term;
    }
    spec.predicates.push_back(std::move(pp));
  }
  return spec;
}

struct SubQueryEstimate {
  double shipped = 0;  // rows the wrapper sends over the network
  double output = 0;   // rows after the engine-side filters above the scan
};

// Statistics-based estimate of one (possibly H1-merged) sub-query. Merged
// stars combine through the containment join formula; each placed filter is
// charged to the first star covering its variables.
SubQueryEstimate EstimateSubQuery(const SubQuery& sq,
                                  const stats::CardinalityEstimator& est) {
  std::vector<stats::PatternSpec> specs;
  std::vector<const StarSubQuery*> stars;
  for (const StarSubQuery& star : sq.stars) {
    specs.push_back(SpecForStar(star, sq.source_id));
    stars.push_back(&star);
  }
  double engine_sel = 1.0;
  for (const PlacedFilter& pf : sq.filters) {
    if (pf.filter == nullptr) continue;
    for (size_t i = 0; i < stars.size(); ++i) {
      if (!StarCoversFilter(*stars[i], *pf.filter)) continue;
      if (pf.placement == FilterPlacement::kSource) {
        specs[i].source_filters.push_back(pf.filter);
      } else {
        engine_sel *= est.EstimateFilterSelectivity(specs[i], *pf.filter);
      }
      break;
    }
  }
  SubQueryEstimate out;
  double rows = est.EstimateShippedRows(specs[0]);
  for (size_t i = 1; i < specs.size(); ++i) {
    const double right = est.EstimateShippedRows(specs[i]);
    // Join variable: the first one the accumulated stars share with star i.
    std::string var;
    size_t left_idx = 0;
    std::vector<std::string> vi = stars[i]->Variables();
    for (size_t j = 0; j < i && var.empty(); ++j) {
      for (const std::string& v : stars[j]->Variables()) {
        if (std::find(vi.begin(), vi.end(), v) != vi.end()) {
          var = v;
          left_idx = j;
          break;
        }
      }
    }
    if (var.empty()) {
      rows *= right;  // cross product inside the source
      continue;
    }
    const double dv_l = est.EstimateDistinct(specs[left_idx], var, rows);
    const double dv_r = est.EstimateDistinct(specs[i], var, right);
    rows = stats::CardinalityEstimator::EstimateJoinRows(rows, right, dv_l,
                                                         dv_r);
  }
  out.shipped = rows;
  out.output = rows * engine_sel;
  return out;
}

std::string FormatEstimate(double rows) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", rows);
  return buf;
}

}  // namespace

bool VariableIsIndexed(const StarSubQuery& star, const std::string& var,
                       const SourceWrapper& wrapper) {
  if (star.SubjectIsVar(var)) {
    return star.class_iri.has_value()
               ? wrapper.IsSubjectKeyIndexed(*star.class_iri)
               : false;
  }
  auto predicate = star.PredicateOfObjectVar(var);
  if (!predicate.has_value() || !star.class_iri.has_value()) return false;
  return wrapper.IsPredicateAttributeIndexed(*star.class_iri, *predicate);
}

Result<FederatedPlan> BuildPlan(
    const sparql::SelectQuery& query, const mapping::RdfMtCatalog& catalog,
    const std::map<std::string, SourceWrapper*>& wrappers,
    const PlanOptions& options) {
  obs::SpanRecorder* recorder =
      options.collect_metrics ? options.spans : nullptr;
  obs::Span plan_span(recorder, "plan", options.parent_span);
  obs::Span decompose_span(recorder, "decompose", plan_span.id());
  LAKEFED_ASSIGN_OR_RETURN(DecomposedQuery decomposed,
                           Decompose(query, options.decomposition));
  decompose_span.End();
  FederatedPlan plan;
  if (options.decomposition == DecompositionKind::kTripleBased) {
    plan.decisions.push_back("triple-based decomposition: " +
                             std::to_string(decomposed.stars.size()) +
                             " single-pattern sub-queries");
  }
  const bool aware = options.mode == PlanMode::kPhysicalDesignAware;
  const bool cost_model =
      options.use_cost_model && options.stats_catalog != nullptr;
  std::optional<stats::CardinalityEstimator> estimator;
  if (cost_model) {
    estimator.emplace(options.stats_catalog, &catalog);
    plan.decisions.push_back(
        "cost model: statistics-based planning over " +
        std::to_string(options.stats_catalog->num_sources()) +
        " analyzed source(s)");
  }

  // --- 1. Source selection ---------------------------------------------
  // Each star becomes one SubQuery per selected source; multiple sources
  // union. We keep, per star, the list of (source, SubQuery-index) to later
  // build service/union nodes.
  //
  // Sources whose circuit breaker is open (inside its cooldown) are routed
  // around while a healthy replica remains — a known-down endpoint should
  // not even be attempted. Once the cooldown elapses the source re-enters
  // plans so the executor can probe it. With no recorded failures the
  // registry is empty and source selection is untouched.
  auto route_around_open = [&](std::vector<std::string> sources)
      -> std::vector<std::string> {
    if (options.breakers == nullptr || sources.size() < 2) return sources;
    std::vector<std::string> healthy;
    for (const std::string& s : sources) {
      if (!options.breakers->ShouldAvoid(s)) healthy.push_back(s);
    }
    if (healthy.empty() || healthy.size() == sources.size()) return sources;
    for (const std::string& s : sources) {
      if (std::find(healthy.begin(), healthy.end(), s) == healthy.end()) {
        plan.decisions.push_back("breaker: routed around open source '" + s +
                                 "'");
      }
    }
    return healthy;
  };
  struct PlannedStar {
    StarSubQuery star;
    std::vector<std::string> sources;
  };
  std::vector<PlannedStar> planned;
  obs::Span select_span(recorder, "source-select", plan_span.id());
  for (StarSubQuery& star : decomposed.stars) {
    std::vector<std::string> sources =
        route_around_open(SelectSources(star, catalog));
    if (sources.empty()) {
      return Status::NotFound("no source can answer sub-query " +
                              star.ToString());
    }
    planned.push_back({std::move(star), std::move(sources)});
  }
  select_span.End();

  // --- 2. Heuristic 2: filter placement ----------------------------------
  // Decides, per star-associated filter, engine vs source. The decision is
  // shared by every source replica of the star.
  const bool slow_network =
      options.network.NominalLatencyMs() > options.slow_network_threshold_ms;
  auto place_filters = [&](const StarSubQuery& star,
                           const std::string& source_id)
      -> std::vector<PlacedFilter> {
    std::vector<PlacedFilter> out;
    SourceWrapper* wrapper = wrappers.at(source_id);
    for (const sparql::FilterExprPtr& filter : star.filters) {
      PlacedFilter pf;
      pf.filter = filter;
      if (!aware) {
        pf.placement = FilterPlacement::kEngine;
        pf.reason = "physical-design-unaware: operations at engine";
        out.push_back(std::move(pf));
        continue;
      }
      if (wrapper->kind() == SourceKind::kRdf) {
        pf.placement = FilterPlacement::kSource;
        pf.reason = "native SPARQL endpoint evaluates its own filters";
        out.push_back(std::move(pf));
        continue;
      }
      if (options.force_filter_placement.has_value()) {
        pf.placement = *options.force_filter_placement;
        pf.reason = "placement forced by options";
        out.push_back(std::move(pf));
        continue;
      }
      if (!options.heuristic2_filter_placement) {
        pf.placement = FilterPlacement::kEngine;
        pf.reason = "heuristic 2 disabled";
        out.push_back(std::move(pf));
        continue;
      }
      std::string var;
      bool simple = sparql::IsPushableToSql(*filter, &var);
      bool indexed = simple && VariableIsIndexed(star, var, *wrapper);
      if (cost_model && simple) {
        // Cost arbitration of Heuristic 2: push any translatable filter to
        // the source when the network injects delay and the filter actually
        // discards rows — even without an index, evaluating at the source
        // beats shipping rows that the engine would drop.
        const double sel = estimator->EstimateFilterSelectivity(
            SpecForStar(star, source_id), *filter);
        const bool has_latency = options.network.NominalLatencyMs() > 0;
        if (has_latency && sel < 0.95) {
          pf.placement = FilterPlacement::kSource;
          pf.reason = "cost: est selectivity " + FormatEstimate(sel) +
                      " cuts shipped rows over delayed network" +
                      (indexed ? " (indexed)" : " (no index)");
        } else {
          pf.placement = FilterPlacement::kEngine;
          pf.reason = has_latency
                          ? "cost: est selectivity " + FormatEstimate(sel) +
                                " saves nothing, evaluated at engine"
                          : "cost: no network delay, evaluated at engine";
        }
        out.push_back(std::move(pf));
        continue;
      }
      if (simple && indexed && slow_network) {
        pf.placement = FilterPlacement::kSource;
        pf.reason = "H2: attribute indexed and network slow (" +
                    options.network.name + ")";
      } else {
        pf.placement = FilterPlacement::kEngine;
        pf.reason = simple ? (indexed ? "H2: network fast, filter at engine"
                                      : "H2: attribute not indexed")
                           : "complex filter evaluated at engine";
      }
      out.push_back(std::move(pf));
    }
    return out;
  };

  // --- 3. Build one execution unit per star ------------------------------
  // A unit is either a single SubQuery (one source) or a union of them.
  struct Unit {
    // Invariant: single-source units hold exactly one SubQuery; multi-source
    // units hold one per source and always execute as a Union.
    std::vector<SubQuery> replicas;
    bool IsSingle() const { return replicas.size() == 1; }
    const SubQuery& front() const { return replicas.front(); }
    std::vector<std::string> Variables() const {
      return replicas.front().Variables();
    }
  };
  std::vector<Unit> units;
  for (PlannedStar& ps : planned) {
    Unit unit;
    for (const std::string& source : ps.sources) {
      SubQuery sq;
      sq.source_id = source;
      sq.naive_translation = options.naive_sql_translation;
      sq.stars.push_back(ps.star);
      sq.filters = place_filters(ps.star, source);
      unit.replicas.push_back(std::move(sq));
    }
    units.push_back(std::move(unit));
  }

  // Calibrated cost-model estimate of one sub-query: the raw statistics
  // estimate, overridden by runtime feedback from earlier executions of the
  // same sub-query (the output estimate scales proportionally).
  auto est_subquery = [&](const SubQuery& sq) -> SubQueryEstimate {
    SubQueryEstimate e = EstimateSubQuery(sq, *estimator);
    const double calibrated =
        options.stats_catalog->Calibrated(SubQueryStatsKey(sq), e.shipped);
    if (calibrated != e.shipped) {
      e.output = e.shipped > 0 ? e.output * (calibrated / e.shipped)
                               : calibrated;
      e.shipped = calibrated;
    }
    return e;
  };

  // --- 4. Heuristic 1: pushing down joins --------------------------------
  // Merge two single-source units into one SubQuery when: same relational
  // endpoint, the wrapper supports pushdown, they share a join variable and
  // the join attribute is indexed. Repeat to fixpoint.
  if (aware && options.heuristic1_join_pushdown) {
    bool merged = true;
    while (merged) {
      merged = false;
      for (size_t i = 0; i < units.size() && !merged; ++i) {
        if (!units[i].IsSingle()) continue;
        for (size_t j = i + 1; j < units.size() && !merged; ++j) {
          if (!units[j].IsSingle()) continue;
          SubQuery& a = units[i].replicas.front();
          SubQuery& b = units[j].replicas.front();
          if (a.source_id != b.source_id) continue;
          SourceWrapper* wrapper = wrappers.at(a.source_id);
          if (!wrapper->SupportsJoinPushdown()) continue;
          std::vector<std::string> shared;
          if (!a.SharesVariableWith(b, &shared)) continue;
          // The join attribute must be indexed on both sides (subjects are
          // PKs, hence indexed; objects need a secondary index).
          const std::string& var = shared.front();
          auto indexed_in = [&](const SubQuery& sq) {
            for (const StarSubQuery& star : sq.stars) {
              std::vector<std::string> vars = star.Variables();
              if (std::find(vars.begin(), vars.end(), var) == vars.end()) {
                continue;
              }
              if (VariableIsIndexed(star, var, *wrapper)) return true;
            }
            return false;
          };
          if (!indexed_in(a) || !indexed_in(b)) continue;
          // Both sides must construct ?var's terms identically, or SQL
          // column equality would not match RDF term equality.
          bool compatible = true;
          for (const StarSubQuery& sa : a.stars) {
            for (const StarSubQuery& sb : b.stars) {
              auto va = sa.Variables();
              auto vb = sb.Variables();
              if (std::find(va.begin(), va.end(), var) == va.end()) continue;
              if (std::find(vb.begin(), vb.end(), var) == vb.end()) continue;
              if (!wrapper->CanPushDownJoin(sa, sb, var)) compatible = false;
            }
          }
          if (!compatible) continue;
          if (cost_model) {
            // Cost arbitration of Heuristic 1: merging ships the join
            // result instead of both inputs — reject the merge when the
            // estimated join result is the larger transfer.
            SubQuery merged = a;
            merged.stars.insert(merged.stars.end(), b.stars.begin(),
                                b.stars.end());
            merged.filters.insert(merged.filters.end(), b.filters.begin(),
                                  b.filters.end());
            const double est_merged = est_subquery(merged).shipped;
            const double est_separate =
                est_subquery(a).shipped + est_subquery(b).shipped;
            if (est_merged > est_separate) {
              plan.decisions.push_back(
                  "cost: H1 merge on ?" + var + " over " + a.source_id +
                  " rejected (est " + FormatEstimate(est_merged) +
                  " merged vs " + FormatEstimate(est_separate) +
                  " separate rows shipped)");
              continue;
            }
          }
          plan.decisions.push_back(
              "H1: merged SSQs over " + a.source_id + " on ?" + var +
              " (join attribute indexed) -> join pushed to the source");
          a.stars.insert(a.stars.end(), b.stars.begin(), b.stars.end());
          a.filters.insert(a.filters.end(), b.filters.begin(),
                           b.filters.end());
          units.erase(units.begin() + static_cast<ptrdiff_t>(j));
          merged = true;
        }
      }
    }
  } else if (!aware) {
    plan.decisions.push_back(
        "physical-design-unaware: no join pushdown, all joins and filters "
        "at the engine");
  }

  // --- 5. Per-unit plan nodes (service [+ engine filter] [+ union]) ------
  auto build_unit_node = [&](const Unit& unit) -> FedPlanPtr {
    std::vector<FedPlanPtr> scans;
    for (const SubQuery& sq : unit.replicas) {
      FedPlanPtr node = MakeServiceNode(sq);
      // Union siblings serve the same molecule: they are the leaf's
      // failover alternates.
      for (const SubQuery& sibling : unit.replicas) {
        if (sibling.source_id != sq.source_id) {
          node->failover_sources.push_back(sibling.source_id);
        }
      }
      SubQueryEstimate estimate;
      if (cost_model) {
        estimate = est_subquery(sq);
        node->estimated_rows = estimate.shipped;
        node->stats_key = SubQueryStatsKey(sq);
      }
      std::vector<sparql::FilterExprPtr> engine_filters = sq.EngineFilters();
      if (!engine_filters.empty()) {
        node = MakeFilterNode(std::move(node), std::move(engine_filters));
        if (cost_model) node->estimated_rows = estimate.output;
      }
      scans.push_back(std::move(node));
    }
    if (scans.size() == 1) return std::move(scans.front());
    double union_estimate = 0;
    if (cost_model) {
      for (const FedPlanPtr& scan : scans) {
        union_estimate += std::max(scan->estimated_rows, 0.0);
      }
    }
    FedPlanPtr node = MakeUnionNode(std::move(scans));
    if (cost_model) node->estimated_rows = union_estimate;
    return node;
  };

  // --- 6. Join-tree construction (greedy, smallest estimate first) -------
  // With the cost model on, unit estimates come from the statistics and the
  // greedy criterion is the estimated *join output* against the current
  // tree; otherwise the molecule-cardinality heuristic orders units.
  std::vector<size_t> remaining(units.size());
  for (size_t i = 0; i < units.size(); ++i) remaining[i] = i;
  std::vector<double> unit_shipped(units.size(), -1.0);
  std::vector<double> unit_output(units.size(), -1.0);
  if (cost_model) {
    for (size_t i = 0; i < units.size(); ++i) {
      double shipped = 0, output = 0;
      for (const SubQuery& sq : units[i].replicas) {
        SubQueryEstimate e = est_subquery(sq);
        shipped += e.shipped;
        output += e.output;
      }
      unit_shipped[i] = shipped;
      unit_output[i] = output;
    }
  }
  auto rows_of = [&](size_t idx) {
    if (cost_model) return unit_output[idx];
    return EstimateTransferredRows(units[idx].front(), catalog);
  };
  // Estimated distinct values of `var` among one unit's output rows.
  auto unit_var_distinct = [&](size_t idx, const std::string& var,
                               double rows) -> double {
    for (const SubQuery& sq : units[idx].replicas) {
      for (const StarSubQuery& star : sq.stars) {
        std::vector<std::string> vars = star.Variables();
        if (std::find(vars.begin(), vars.end(), var) == vars.end()) continue;
        return estimator->EstimateDistinct(SpecForStar(star, sq.source_id),
                                           var, rows);
      }
    }
    return rows;
  };
  std::sort(remaining.begin(), remaining.end(),
            [&](size_t a, size_t b) { return rows_of(a) < rows_of(b); });

  size_t first = remaining.front();
  remaining.erase(remaining.begin());
  FedPlanPtr root = build_unit_node(units[first]);
  std::vector<std::string> bound_vars = units[first].Variables();
  // Cost-model running state: estimated rows of the current tree and the
  // estimated distinct values of each bound variable.
  double est_tree = cost_model ? unit_output[first] : -1.0;
  std::map<std::string, double> tree_distinct;
  if (cost_model) {
    for (const std::string& v : bound_vars) {
      tree_distinct[v] =
          std::min(unit_var_distinct(first, v, est_tree),
                   std::max(est_tree, 1.0));
    }
  }

  while (!remaining.empty()) {
    // Among units sharing a variable with the current tree, pick the most
    // selective (cost model: the smallest estimated join output); fall back
    // to a cross product if none connects.
    size_t pick_pos = remaining.size();
    std::vector<std::string> pick_shared;
    double pick_join_est = -1.0;
    for (size_t pos = 0; pos < remaining.size(); ++pos) {
      const Unit& unit = units[remaining[pos]];
      std::vector<std::string> shared;
      for (const std::string& v : unit.Variables()) {
        if (std::find(bound_vars.begin(), bound_vars.end(), v) !=
            bound_vars.end()) {
          shared.push_back(v);
        }
      }
      if (shared.empty()) continue;
      if (cost_model) {
        const size_t idx = remaining[pos];
        const std::string& v = shared.front();
        auto it = tree_distinct.find(v);
        const double dv_tree = it != tree_distinct.end() ? it->second
                                                         : est_tree;
        const double dv_unit = unit_var_distinct(idx, v, unit_output[idx]);
        const double join_est = stats::CardinalityEstimator::EstimateJoinRows(
            est_tree, unit_output[idx], dv_tree, dv_unit);
        if (pick_pos == remaining.size() || join_est < pick_join_est) {
          pick_pos = pos;
          pick_shared = shared;
          pick_join_est = join_est;
        }
      } else if (pick_pos == remaining.size() ||
                 rows_of(remaining[pos]) < rows_of(remaining[pick_pos])) {
        pick_pos = pos;
        pick_shared = shared;
      }
    }
    if (pick_pos == remaining.size()) {
      pick_pos = 0;  // cross product
      pick_shared.clear();
      if (cost_model) {
        pick_join_est = est_tree * std::max(unit_output[remaining[0]], 0.0);
      }
      plan.decisions.push_back("no shared variable: cross product join");
    }
    size_t pick = remaining[pick_pos];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick_pos));

    const Unit& unit = units[pick];
    auto index_supported_bind = [&] {
      // dependent joins pay off when the bound variable probes an index
      SourceWrapper* wrapper = wrappers.at(unit.front().source_id);
      for (const StarSubQuery& star : unit.front().stars) {
        std::vector<std::string> vars = star.Variables();
        if (std::find(vars.begin(), vars.end(), pick_shared.front()) ==
            vars.end()) {
          continue;
        }
        if (VariableIsIndexed(star, pick_shared.front(), *wrapper)) {
          return true;
        }
      }
      return false;
    };
    const bool bind_eligible = unit.IsSingle() && !pick_shared.empty() &&
                               unit.front().EngineFilters().empty();
    bool dependent = options.use_dependent_join && bind_eligible &&
                     index_supported_bind();
    if (cost_model && !dependent && bind_eligible &&
        pick_join_est < unit_shipped[pick]) {
      // Cost decision: a bind join ships only the ~join-result rows from
      // this source instead of its full extension.
      dependent = true;
      plan.decisions.push_back(
          "cost: dependent join on ?" + pick_shared.front() + " into " +
          unit.front().source_id + " (est join " +
          FormatEstimate(pick_join_est) + " < est shipped " +
          FormatEstimate(unit_shipped[pick]) + " rows)");
    }
    if (dependent) {
      plan.decisions.push_back("dependent join on ?" + pick_shared.front() +
                               " into " + unit.front().source_id);
      root = MakeDependentJoinNode(std::move(root), unit.front(),
                                   pick_shared);
    } else {
      root = MakeJoinNode(std::move(root), build_unit_node(unit),
                          pick_shared);
    }
    if (cost_model) {
      root->estimated_rows = pick_join_est;
      est_tree = std::max(pick_join_est, 0.0);
    }
    for (const std::string& v : unit.Variables()) {
      if (std::find(bound_vars.begin(), bound_vars.end(), v) ==
          bound_vars.end()) {
        bound_vars.push_back(v);
      }
      if (cost_model) {
        const double dv = std::min(
            unit_var_distinct(pick, v, unit_output[pick]),
            std::max(est_tree, 1.0));
        auto it = tree_distinct.find(v);
        if (it == tree_distinct.end() || dv < it->second) {
          tree_distinct[v] = dv;
        }
      }
    }
  }

  // --- 7. OPTIONAL groups: left joins after the main tree ----------------
  for (StarSubQuery& star : decomposed.optional_stars) {
    std::vector<std::string> sources =
        route_around_open(SelectSources(star, catalog));
    if (sources.empty()) {
      return Status::NotFound("no source can answer OPTIONAL sub-query " +
                              star.ToString());
    }
    std::vector<FedPlanPtr> scans;
    for (const std::string& source : sources) {
      SubQuery sq;
      sq.source_id = source;
      sq.naive_translation = options.naive_sql_translation;
      sq.stars.push_back(star);
      sq.filters = place_filters(star, source);
      FedPlanPtr node = MakeServiceNode(sq);
      for (const std::string& sibling : sources) {
        if (sibling != source) node->failover_sources.push_back(sibling);
      }
      SubQueryEstimate estimate;
      if (cost_model) {
        estimate = est_subquery(sq);
        node->estimated_rows = estimate.shipped;
        node->stats_key = SubQueryStatsKey(sq);
      }
      std::vector<sparql::FilterExprPtr> engine_filters = sq.EngineFilters();
      if (!engine_filters.empty()) {
        node = MakeFilterNode(std::move(node), std::move(engine_filters));
        if (cost_model) node->estimated_rows = estimate.output;
      }
      scans.push_back(std::move(node));
    }
    FedPlanPtr right = scans.size() == 1 ? std::move(scans.front())
                                         : MakeUnionNode(std::move(scans));
    std::vector<std::string> shared;
    for (const std::string& v : star.Variables()) {
      if (std::find(bound_vars.begin(), bound_vars.end(), v) !=
          bound_vars.end()) {
        shared.push_back(v);
      }
    }
    plan.decisions.push_back("OPTIONAL star left-joined on " +
                             std::to_string(shared.size()) +
                             " shared variable(s)");
    root = MakeLeftJoinNode(std::move(root), std::move(right), shared);
    if (cost_model) root->estimated_rows = est_tree;  // outer side preserved
    for (const std::string& v : star.Variables()) {
      if (std::find(bound_vars.begin(), bound_vars.end(), v) ==
          bound_vars.end()) {
        bound_vars.push_back(v);
      }
    }
  }

  // --- 8. Global filters, ordering, projection, modifiers ----------------
  if (!decomposed.global_filters.empty()) {
    root = MakeFilterNode(std::move(root), decomposed.global_filters);
  }
  if (!query.order_by.empty()) {
    root = MakeOrderByNode(std::move(root), query.order_by);
  }
  plan.variables = query.EffectiveProjection();
  root = MakeProjectNode(std::move(root), plan.variables);
  if (query.distinct) root = MakeDistinctNode(std::move(root));
  if (query.limit.has_value()) {
    root = MakeLimitNode(std::move(root), *query.limit);
  }
  plan.root = std::move(root);
  return plan;
}

}  // namespace lakefed::fed
