// Federated query execution plans (QEPs): trees whose leaves are per-source
// sub-queries and whose inner nodes are the mediator's operators.

#ifndef LAKEFED_FED_PLAN_H_
#define LAKEFED_FED_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "fed/subquery.h"
#include "sparql/ast.h"

namespace lakefed::fed {

struct FedPlanNode;
using FedPlanPtr = std::unique_ptr<FedPlanNode>;

struct FedPlanNode {
  enum class Kind {
    kService,        // leaf: execute `subquery` at its source
    kJoin,           // ANAPSID-style symmetric hash join on `join_vars`
    kLeftJoin,       // OPTIONAL: left outer join on `join_vars`
    kDependentJoin,  // bind join: left drives instantiated right service
    kUnion,          // multi-source molecule union
    kFilter,         // engine-level FILTER evaluation
    kProject,
    kOrderBy,        // blocking sort on `order_by`
    kDistinct,
    kLimit,
  };

  Kind kind = Kind::kService;
  std::vector<FedPlanPtr> children;

  SubQuery subquery;                    // kService / kDependentJoin (right)
  std::vector<std::string> join_vars;   // kJoin / kLeftJoin / kDependentJoin
  std::vector<sparql::FilterExprPtr> filters;  // kFilter
  std::vector<std::string> projection;  // kProject
  std::vector<sparql::OrderCondition> order_by;  // kOrderBy
  int64_t limit = 0;                    // kLimit

  // Cost-model annotations (set only when PlanOptions::use_cost_model is
  // on). estimated_rows < 0 means "no estimate"; stats_key identifies the
  // sub-query for the runtime cardinality feedback loop (kService only).
  double estimated_rows = -1.0;
  std::string stats_key;

  // Alternate sources serving the same molecule(s) as this leaf — its union
  // siblings, filled by the planner for kService nodes. When the leaf's own
  // source is unrecoverable (retries exhausted) the executor fails over to
  // the first healthy alternate. Deliberately absent from Describe/Explain
  // so plan text is unchanged by the fault-tolerance layer.
  std::vector<std::string> failover_sources;

  // Variables this node's output rows bind.
  std::vector<std::string> OutputVariables() const;

  std::string Describe() const;
  std::string Explain() const;  // indented subtree
};

struct FederatedPlan {
  FedPlanPtr root;
  std::vector<std::string> variables;  // final projection
  // Log of heuristic decisions taken during planning (for EXPLAIN output).
  std::vector<std::string> decisions;

  std::string Explain() const;
};

FedPlanPtr MakeServiceNode(SubQuery subquery);
FedPlanPtr MakeJoinNode(FedPlanPtr left, FedPlanPtr right,
                        std::vector<std::string> join_vars);
FedPlanPtr MakeLeftJoinNode(FedPlanPtr left, FedPlanPtr right,
                            std::vector<std::string> join_vars);
FedPlanPtr MakeOrderByNode(FedPlanPtr child,
                           std::vector<sparql::OrderCondition> order_by);
FedPlanPtr MakeDependentJoinNode(FedPlanPtr left, SubQuery right,
                                 std::vector<std::string> join_vars);
FedPlanPtr MakeUnionNode(std::vector<FedPlanPtr> children);
FedPlanPtr MakeFilterNode(FedPlanPtr child,
                          std::vector<sparql::FilterExprPtr> filters);
FedPlanPtr MakeProjectNode(FedPlanPtr child,
                           std::vector<std::string> projection);
FedPlanPtr MakeDistinctNode(FedPlanPtr child);
FedPlanPtr MakeLimitNode(FedPlanPtr child, int64_t limit);

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_PLAN_H_
