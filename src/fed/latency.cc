#include "fed/latency.h"

namespace lakefed::fed {

void LatencyTracker::Record(const std::string& source_id, double call_ms) {
  obs::Histogram* hist;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<obs::Histogram>& slot = sources_[source_id];
    if (slot == nullptr) slot = std::make_unique<obs::Histogram>();
    hist = slot.get();
  }
  hist->Record(call_ms);
}

LatencyTracker::Estimate LatencyTracker::Quantile(
    const std::string& source_id, double q) const {
  obs::Histogram* hist;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sources_.find(source_id);
    if (it == sources_.end()) return {};
    hist = it->second.get();
  }
  return {hist->Count(), hist->Percentile(q)};
}

std::map<std::string, LatencyTracker::Quantiles> LatencyTracker::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Quantiles> out;
  for (const auto& [id, hist] : sources_) {
    out[id] = {hist->Count(), hist->Percentile(0.50), hist->Percentile(0.95),
               hist->Percentile(0.99)};
  }
  return out;
}

void LatencyTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.clear();
}

}  // namespace lakefed::fed
