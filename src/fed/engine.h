// FederatedEngine: the public entry point of LakeFed — the role Ontario
// plays in the paper. Register wrappers for the Data Lake's sources, then
// run SPARQL queries under a chosen plan mode and network profile.
//
// The primary API is session-based: CreateSession(QueryRequest) returns a
// ResultStream that yields solution mappings incrementally, supports
// Cancel() from any thread and honours a per-query deadline. The classic
// blocking calls (Execute / ExecuteParsed) remain as thin shims that create
// a session and drain it.
//
// Plan vs Execute: Plan() is EXPLAIN — it builds the same QEP that a
// session would run (for a UNION, the first branch combination) without
// touching the sources. Execute/CreateSession re-plan internally; a plan
// object is never handed back in, so options are the only execution knob.
//
// Concurrency: the engine seals its catalog at the first CreateSession (or
// explicitly via Seal()) — afterwards RegisterSource fails and the catalog
// and wrapper registry are immutable, so any number of sessions may run
// concurrently against one engine. All per-query state lives in the
// session. Wrappers must tolerate concurrent Execute calls (the bundled
// ones do: their stores are read-only at query time).

#ifndef LAKEFED_FED_ENGINE_H_
#define LAKEFED_FED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "fed/breaker.h"
#include "fed/cache.h"
#include "fed/executor.h"
#include "fed/latency.h"
#include "fed/options.h"
#include "fed/plan.h"
#include "fed/planner.h"
#include "fed/session.h"
#include "fed/wrapper.h"
#include "mapping/rdf_mt.h"
#include "obs/metrics.h"
#include "obs/querylog.h"
#include "obs/span.h"
#include "stats/analyze.h"
#include "stats/stats_catalog.h"

namespace lakefed::fed {

class FederatedEngine {
 public:
  FederatedEngine() = default;
  FederatedEngine(const FederatedEngine&) = delete;
  FederatedEngine& operator=(const FederatedEngine&) = delete;

  // Registers a source; its molecule templates join the engine's RDF-MT
  // catalog (collected once, at registration — like Ontario's offline
  // source-description step). Fails once the engine is sealed.
  Status RegisterSource(std::unique_ptr<SourceWrapper> wrapper);

  // Freezes the source registry/catalog, making the engine safe for
  // concurrent sessions. Implicit in the first CreateSession; idempotent.
  void Seal() const { sealed_.store(true, std::memory_order_release); }
  bool sealed() const { return sealed_.load(std::memory_order_acquire); }

  size_t num_sources() const { return wrappers_.size(); }
  const mapping::RdfMtCatalog& catalog() const { return catalog_; }
  SourceWrapper* wrapper(const std::string& source_id);
  const SourceWrapper* wrapper(const std::string& source_id) const;

  // Profiles every registered source into the engine's statistics catalog
  // — the ANALYZE step of the cost-based planner. Seals the engine.
  // Re-analyzing replaces the catalog but carries the runtime cardinality
  // feedback forward; catalogs already handed to running sessions stay
  // valid (they are retired, not destroyed).
  Status AnalyzeSources(const stats::AnalyzeOptions& options = {}) const;

  // The engine's statistics catalog, or nullptr until AnalyzeSources has
  // run (directly, or lazily through the first cost-model query).
  const stats::StatsCatalog* stats_catalog() const;

  // The engine's per-source circuit breakers: shared across sessions, so a
  // source that kept failing in one query is routed around (and probed) by
  // the next. Sessions receive it via PlanOptions::breakers unless the
  // caller supplied a registry of their own.
  BreakerRegistry* breakers() const { return &breakers_; }

  // The engine's per-source latency tracker: wrapper-call durations from
  // every session accumulate here, feeding adaptive timeouts and hedge
  // delays (PlanOptions::latency, filled in unless the caller supplied a
  // tracker of their own). Rendered by the shell's `.timeouts`.
  LatencyTracker* latency() const { return &latency_; }

  // The engine's shared plan and sub-answer caches (fed/cache.h). Sessions
  // receive them via PlanOptions::plans/answers when the corresponding
  // cache flag is on and no instance was supplied; AnalyzeSources bumps
  // their structural epochs, invalidating everything cached against the
  // previous statistics. Rendered by the shell's `.cache`.
  PlanCache* plan_cache() const { return &plan_cache_; }
  SubAnswerCache* answer_cache() const { return &answer_cache_; }

  // Engine-wide metrics: the aggregate of every finished session's registry
  // (sessions with collect_metrics on) plus session/query counters, plus a
  // projection of the circuit-breaker registry (svc.breaker.<id>.state
  // gauges and transition counters) so breaker state is visible outside the
  // shell's `.breakers`. Cut at any time; rendered by `.metrics`.
  obs::MetricsSnapshot MetricsSnapshot() const;

  // The engine-wide registry itself (thread-safe; outlives every session).
  obs::MetricsRegistry* metrics() const { return &metrics_; }

  // External snapshot contributors: each registered sampler runs inside
  // MetricsSnapshot() and may append series (the monitoring plane uses
  // this to project scheduler queue depths and admission stats into the
  // scrape without the engine depending on svc). The snapshot is re-sorted
  // after samplers run, so contributors need not keep it ordered. Returns
  // a token for RemoveMetricsSampler; samplers must be removed before the
  // state they capture dies.
  using MetricsSampler = std::function<void(obs::MetricsSnapshot*)>;
  uint64_t AddMetricsSampler(MetricsSampler sampler) const;
  void RemoveMetricsSampler(uint64_t token) const;

  // Structured query log / slow-query flight recorder (obs/querylog.h).
  // Off (null) by default — enabling it makes every session append one
  // completion record via PlanOptions::query_log. Idempotent per engine:
  // re-enabling replaces config only while no log exists yet.
  void EnableQueryLog(obs::QueryLogConfig config = {}) const;
  obs::QueryLog* query_log() const;

  // Plans without executing (EXPLAIN).
  Result<FederatedPlan> Plan(const std::string& sparql,
                             const PlanOptions& options) const;

  // Starts one streaming query session: validates request.options, parses
  // request.query (unless request.parsed is given), plans, spawns the
  // dataflow and hands back the live stream. Seals the engine.
  Result<std::unique_ptr<ResultStream>> CreateSession(
      QueryRequest request) const;

  // Blocking shim: parses, plans, executes and materializes the full
  // answer — equivalent to CreateSession + ResultStream::Drain. UNION
  // blocks execute one federated plan per branch combination; aggregates
  // group the merged solutions at the mediator.
  Result<QueryAnswer> Execute(const std::string& sparql,
                              const PlanOptions& options) const;

  // Blocking shim for an already-parsed query.
  Result<QueryAnswer> ExecuteParsed(const sparql::SelectQuery& query,
                                    const PlanOptions& options) const;

 private:
  // Fills options->stats_catalog for cost-model runs, lazily analyzing the
  // sources on the first such query. No-op when the cost model is off or a
  // catalog was supplied explicitly.
  Status PrepareStats(PlanOptions* options) const;

  std::map<std::string, std::unique_ptr<SourceWrapper>> owned_;
  std::map<std::string, SourceWrapper*> wrappers_;
  mapping::RdfMtCatalog catalog_;
  // Set on the first CreateSession; guards the registry against mutation
  // while sessions run (Seal() is const so const engines can host sessions).
  mutable std::atomic<bool> sealed_{false};

  // Statistics catalog (cost-based planning). `retired_stats_` keeps every
  // superseded catalog alive because sessions hold raw pointers into it.
  mutable std::mutex stats_mu_;
  mutable std::unique_ptr<stats::StatsCatalog> stats_;
  mutable std::vector<std::unique_ptr<stats::StatsCatalog>> retired_stats_;

  // Circuit-breaker registry (thread-safe; outlives every session).
  mutable BreakerRegistry breakers_;

  // Per-source latency tracker (thread-safe; outlives every session).
  mutable LatencyTracker latency_;

  // Shared reuse layer (thread-safe; outlives every session). Only
  // sessions that opt in (PlanOptions::plan_cache / answer_cache) touch
  // them, so engines that never enable caching pay nothing.
  mutable PlanCache plan_cache_;
  mutable SubAnswerCache answer_cache_;

  // Engine-wide metrics registry (thread-safe; outlives every session).
  mutable obs::MetricsRegistry metrics_;

  // Snapshot contributors (AddMetricsSampler) and the optional query log.
  mutable std::mutex obs_mu_;
  mutable std::map<uint64_t, MetricsSampler> samplers_;
  mutable uint64_t next_sampler_token_ = 1;
  mutable std::unique_ptr<obs::QueryLog> query_log_;
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_ENGINE_H_
