// FederatedEngine: the public entry point of LakeFed — the role Ontario
// plays in the paper. Register wrappers for the Data Lake's sources, then
// execute SPARQL queries under a chosen plan mode and network profile.

#ifndef LAKEFED_FED_ENGINE_H_
#define LAKEFED_FED_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fed/executor.h"
#include "fed/options.h"
#include "fed/plan.h"
#include "fed/planner.h"
#include "fed/wrapper.h"
#include "mapping/rdf_mt.h"

namespace lakefed::fed {

class FederatedEngine {
 public:
  FederatedEngine() = default;
  FederatedEngine(const FederatedEngine&) = delete;
  FederatedEngine& operator=(const FederatedEngine&) = delete;

  // Registers a source; its molecule templates join the engine's RDF-MT
  // catalog (collected once, at registration — like Ontario's offline
  // source-description step).
  Status RegisterSource(std::unique_ptr<SourceWrapper> wrapper);

  size_t num_sources() const { return wrappers_.size(); }
  const mapping::RdfMtCatalog& catalog() const { return catalog_; }
  SourceWrapper* wrapper(const std::string& source_id);

  // Plans without executing (EXPLAIN).
  Result<FederatedPlan> Plan(const std::string& sparql,
                             const PlanOptions& options) const;

  // Parses, plans and executes. UNION blocks execute one federated plan
  // per branch combination; aggregates group the merged solutions at the
  // mediator.
  Result<QueryAnswer> Execute(const std::string& sparql,
                              const PlanOptions& options) const;

  // Execute for an already-parsed query.
  Result<QueryAnswer> ExecuteParsed(const sparql::SelectQuery& query,
                                    const PlanOptions& options) const;

 private:
  std::map<std::string, std::unique_ptr<SourceWrapper>> owned_;
  std::map<std::string, SourceWrapper*> wrappers_;
  mapping::RdfMtCatalog catalog_;
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_ENGINE_H_
