// FederatedEngine: the public entry point of LakeFed — the role Ontario
// plays in the paper. Register wrappers for the Data Lake's sources, then
// run SPARQL queries under a chosen plan mode and network profile.
//
// The primary API is session-based: CreateSession(QueryRequest) returns a
// ResultStream that yields solution mappings incrementally, supports
// Cancel() from any thread and honours a per-query deadline. The classic
// blocking calls (Execute / ExecuteParsed) remain as thin shims that create
// a session and drain it.
//
// Plan vs Execute: Plan() is EXPLAIN — it builds the same QEP that a
// session would run (for a UNION, the first branch combination) without
// touching the sources. Execute/CreateSession re-plan internally; a plan
// object is never handed back in, so options are the only execution knob.
//
// Concurrency: the engine seals its catalog at the first CreateSession (or
// explicitly via Seal()) — afterwards RegisterSource fails and the catalog
// and wrapper registry are immutable, so any number of sessions may run
// concurrently against one engine. All per-query state lives in the
// session. Wrappers must tolerate concurrent Execute calls (the bundled
// ones do: their stores are read-only at query time).

#ifndef LAKEFED_FED_ENGINE_H_
#define LAKEFED_FED_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fed/executor.h"
#include "fed/options.h"
#include "fed/plan.h"
#include "fed/planner.h"
#include "fed/session.h"
#include "fed/wrapper.h"
#include "mapping/rdf_mt.h"

namespace lakefed::fed {

class FederatedEngine {
 public:
  FederatedEngine() = default;
  FederatedEngine(const FederatedEngine&) = delete;
  FederatedEngine& operator=(const FederatedEngine&) = delete;

  // Registers a source; its molecule templates join the engine's RDF-MT
  // catalog (collected once, at registration — like Ontario's offline
  // source-description step). Fails once the engine is sealed.
  Status RegisterSource(std::unique_ptr<SourceWrapper> wrapper);

  // Freezes the source registry/catalog, making the engine safe for
  // concurrent sessions. Implicit in the first CreateSession; idempotent.
  void Seal() const { sealed_.store(true, std::memory_order_release); }
  bool sealed() const { return sealed_.load(std::memory_order_acquire); }

  size_t num_sources() const { return wrappers_.size(); }
  const mapping::RdfMtCatalog& catalog() const { return catalog_; }
  SourceWrapper* wrapper(const std::string& source_id);

  // Plans without executing (EXPLAIN).
  Result<FederatedPlan> Plan(const std::string& sparql,
                             const PlanOptions& options) const;

  // Starts one streaming query session: validates request.options, parses
  // request.query (unless request.parsed is given), plans, spawns the
  // dataflow and hands back the live stream. Seals the engine.
  Result<std::unique_ptr<ResultStream>> CreateSession(
      QueryRequest request) const;

  // Blocking shim: parses, plans, executes and materializes the full
  // answer — equivalent to CreateSession + ResultStream::Drain. UNION
  // blocks execute one federated plan per branch combination; aggregates
  // group the merged solutions at the mediator.
  Result<QueryAnswer> Execute(const std::string& sparql,
                              const PlanOptions& options) const;

  // Blocking shim for an already-parsed query.
  Result<QueryAnswer> ExecuteParsed(const sparql::SelectQuery& query,
                                    const PlanOptions& options) const;

 private:
  std::map<std::string, std::unique_ptr<SourceWrapper>> owned_;
  std::map<std::string, SourceWrapper*> wrappers_;
  mapping::RdfMtCatalog catalog_;
  // Set on the first CreateSession; guards the registry against mutation
  // while sessions run (Seal() is const so const engines can host sessions).
  mutable std::atomic<bool> sealed_{false};
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_ENGINE_H_
