// AnswerTrace: the answer-over-time measurements behind the paper's Figure 2
// ("answer traces show the generation of answers over time").

#ifndef LAKEFED_FED_TRACE_H_
#define LAKEFED_FED_TRACE_H_

#include <string>
#include <vector>

namespace lakefed::fed {

struct AnswerTrace {
  // Arrival time of the i-th answer, seconds since execution start.
  std::vector<double> timestamps;
  // Total wall time of the execution (>= last timestamp).
  double completion_seconds = 0;
  // Timestamped execution events (retries, failovers, breaker trips, ...),
  // in occurrence order. Empty for fault-free runs.
  struct Event {
    double time_s = 0;
    std::string label;
  };
  std::vector<Event> events;

  size_t num_answers() const { return timestamps.size(); }

  // Time to first answer; completion time when there are no answers.
  double TimeToFirst() const {
    return timestamps.empty() ? completion_seconds : timestamps.front();
  }

  // Number of answers produced by time `t` (seconds).
  size_t AnswersAt(double t) const;

  // "time_s,answers" CSV rows, one per answer (plus a final completion row).
  std::string ToCsv() const;

  // Sampled series with `points` rows — convenient for plotting figures.
  std::string ToSampledCsv(size_t points = 50) const;
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_TRACE_H_
