#include "fed/fingerprint.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <sstream>

namespace lakefed::fed {
namespace {

// Renders a filter expression in canonical form. Literal nodes are emitted
// through `lit`, so one renderer serves both passes: the sort pass maps
// every literal to a bare "$", the emit pass assigns numbered placeholders
// and collects the values.
void RenderFilter(const sparql::FilterExpr& f,
                  const std::function<std::string(const rdf::Term&)>& lit,
                  std::string* out) {
  using Kind = sparql::FilterExpr::Kind;
  switch (f.kind()) {
    case Kind::kVar:
      *out += "?" + f.var();
      return;
    case Kind::kLiteral:
      *out += lit(f.literal());
      return;
    case Kind::kCompare:
      *out += "(";
      RenderFilter(*f.args()[0], lit, out);
      *out += " " + sparql::CompareOpToString(f.compare_op()) + " ";
      RenderFilter(*f.args()[1], lit, out);
      *out += ")";
      return;
    case Kind::kAnd:
    case Kind::kOr:
      *out += "(";
      RenderFilter(*f.args()[0], lit, out);
      *out += f.kind() == Kind::kAnd ? " && " : " || ";
      RenderFilter(*f.args()[1], lit, out);
      *out += ")";
      return;
    case Kind::kNot:
      *out += "(!";
      RenderFilter(*f.args()[0], lit, out);
      *out += ")";
      return;
    case Kind::kFunction: {
      *out += sparql::FuncToString(f.func()) + "(";
      bool first = true;
      for (const sparql::FilterExprPtr& arg : f.args()) {
        if (!first) *out += ", ";
        first = false;
        RenderFilter(*arg, lit, out);
      }
      *out += ")";
      return;
    }
  }
}

std::string RenderPatternNode(
    const rdf::PatternNode& n,
    const std::function<std::string(const rdf::Term&)>& lit) {
  if (n.is_var) return "?" + n.var;
  // Constant IRIs/blanks stay in the template (source selection and join
  // pushdown reason about them structurally); literal constants lift out.
  if (n.term.is_iri()) return n.term.ToString();
  return lit(n.term);
}

std::string RenderPattern(
    const rdf::TriplePattern& p,
    const std::function<std::string(const rdf::Term&)>& lit) {
  return RenderPatternNode(p.subject, lit) + " " +
         RenderPatternNode(p.predicate, lit) + " " +
         RenderPatternNode(p.object, lit) + " .";
}

// Canonical order of a pattern/filter group: sort by the literal-blind
// rendering so two queries that interleave their patterns differently (or
// bind different constants) agree on the order, then emit in that order.
struct GroupRenderer {
  std::vector<std::string>* params;

  std::string LiteralBlind(const rdf::Term&) const { return "$"; }

  std::string Emit(const rdf::Term& t) {
    params->push_back(t.ToString());
    return "$" + std::to_string(params->size());
  }

  void Append(const std::vector<rdf::TriplePattern>& patterns,
              const std::vector<sparql::FilterExprPtr>& filters,
              const std::string& indent, std::string* out) {
    auto blind = [this](const rdf::Term& t) { return LiteralBlind(t); };
    auto emit = [this](const rdf::Term& t) { return Emit(t); };

    std::vector<size_t> order(patterns.size());
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::string> keys(patterns.size());
    for (size_t i = 0; i < patterns.size(); ++i) {
      keys[i] = RenderPattern(patterns[i], blind);
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return keys[a] < keys[b];
    });
    for (size_t idx : order) {
      *out += indent + RenderPattern(patterns[idx], emit) + "\n";
    }

    // FILTERs conjoin, so their order is semantically free: sort them too.
    std::vector<size_t> forder(filters.size());
    std::iota(forder.begin(), forder.end(), 0);
    std::vector<std::string> fkeys(filters.size());
    for (size_t i = 0; i < filters.size(); ++i) {
      RenderFilter(*filters[i], blind, &fkeys[i]);
    }
    std::stable_sort(forder.begin(), forder.end(), [&](size_t a, size_t b) {
      return fkeys[a] < fkeys[b];
    });
    for (size_t idx : forder) {
      *out += indent + "FILTER ";
      RenderFilter(*filters[idx], emit, out);
      *out += "\n";
    }
  }
};

}  // namespace

std::string PlanShapeDigest(const PlanOptions& options) {
  std::ostringstream out;
  out << "mode=" << PlanModeToString(options.mode)
      << "|h1=" << options.heuristic1_join_pushdown
      << "|h2=" << options.heuristic2_filter_placement
      // The *modelled* network decides Heuristic 2 (NominalLatencyMs), so
      // its identity is part of the plan shape; time_scale only stretches
      // the simulation and is deliberately excluded.
      << "|net=" << options.network.name << ":" << options.network.alpha
      << ":" << options.network.beta
      << "|slow=" << options.slow_network_threshold_ms << "|fp=";
  if (options.force_filter_placement.has_value()) {
    out << (*options.force_filter_placement == FilterPlacement::kSource
                ? "source"
                : "engine");
  } else {
    out << "h2";
  }
  out << "|dj=" << options.use_dependent_join
      << "|decomp=" << static_cast<int>(options.decomposition)
      << "|naive=" << options.naive_sql_translation
      << "|cost=" << options.use_cost_model;
  return out.str();
}

QueryFingerprint FingerprintQuery(const sparql::SelectQuery& query,
                                  const PlanOptions& options) {
  QueryFingerprint fp;
  fp.options_digest = PlanShapeDigest(options);

  std::string out = "SELECT";
  if (query.distinct) out += " DISTINCT";
  if (query.select_all && query.variables.empty()) {
    out += " *";
  } else {
    for (const std::string& v : query.variables) out += " ?" + v;
  }
  for (const sparql::SelectAggregate& agg : query.aggregates) {
    out += " (" + sparql::AggregateFuncToString(agg.func) + "(";
    if (agg.distinct) out += "DISTINCT ";
    out += agg.var.empty() ? "*" : "?" + agg.var;
    out += ") AS ?" + agg.alias + ")";
  }
  out += "\n";

  GroupRenderer renderer{&fp.params};
  out += "WHERE {\n";
  renderer.Append(query.patterns, query.filters, "  ", &out);
  for (const sparql::OptionalGroup& opt : query.optionals) {
    out += "  OPTIONAL {\n";
    renderer.Append(opt.patterns, opt.filters, "    ", &out);
    out += "  }\n";
  }
  // Branch queries (post-ExpandUnions) have no union blocks left; a raw
  // query fingerprinted before expansion keeps its blocks in place.
  for (const sparql::UnionBlock& block : query.unions) {
    out += "  UNION-BLOCK {\n";
    for (const sparql::UnionBlock::Branch& branch : block.branches) {
      out += "    BRANCH {\n";
      renderer.Append(branch.patterns, branch.filters, "      ", &out);
      out += "    }\n";
    }
    out += "  }\n";
  }
  out += "}\n";

  if (!query.group_by.empty()) {
    out += "GROUP BY";
    for (const std::string& v : query.group_by) out += " ?" + v;
    out += "\n";
  }
  if (!query.order_by.empty()) {
    out += "ORDER BY";
    for (const sparql::OrderCondition& c : query.order_by) {
      out += std::string(" ") + (c.ascending ? "ASC(?" : "DESC(?") +
             c.variable + ")";
    }
    out += "\n";
  }
  if (query.limit.has_value()) {
    out += "LIMIT " + std::to_string(*query.limit) + "\n";
  }
  fp.canonical = std::move(out);
  return fp;
}

std::string QueryFingerprint::CacheKey() const {
  std::string key = canonical;
  key += "\x01P:";
  for (const std::string& p : params) {
    key += p;
    key.push_back('\x02');
  }
  key += "\x01O:" + options_digest;
  return key;
}

std::string QueryFingerprint::ToText() const {
  std::string out = canonical;
  if (!params.empty()) {
    out += "-- params:\n";
    for (size_t i = 0; i < params.size(); ++i) {
      out += "--   $" + std::to_string(i + 1) + " = " + params[i] + "\n";
    }
  }
  out += "-- options: " + options_digest + "\n";
  return out;
}

}  // namespace lakefed::fed
