// System meta-source: the engine's own state exposed as a read-only
// virtual RDF source (the Hyrise meta-table idiom, transplanted to a
// federation). Registered like any other SourceWrapper, it contributes
// molecule templates for five sys.* tables, so SPARQL queries over the
// sys vocabulary flow through the ordinary decompose -> select -> plan ->
// execute path and can even be joined with data sources:
//
//   sys.metrics    one row per engine metric (counters, gauges, histogram
//                  summaries — the same snapshot /metrics renders)
//   sys.sources    one row per registered source: molecule coverage,
//                  breaker state, observed latency quantiles, stats-
//                  catalog epoch and NDV summaries
//   sys.queries    recent completed sessions from the query log plus the
//                  live-session count
//   sys.cache      plan / parsed / sub-answer cache counters and hit rates
//   sys.scheduler  worker-pool stats (steals, parks, queue depths), when a
//                  scheduler provider is wired in
//
// Every Execute builds a fresh point-in-time TripleStore snapshot of the
// requested state and evaluates the sub-query's BGP against it — the
// tables are never materialized anywhere, so registering the meta-source
// costs nothing until somebody queries it. Source selection stays
// untouched for ordinary queries: the sys vocabulary is disjoint from
// every data molecule, so predicate-containment never routes a data star
// here.
//
// Layering: fed may not depend on svc, so scheduler state arrives through
// a std::function provider the service (or shell) wires in.

#ifndef LAKEFED_FED_META_SOURCE_H_
#define LAKEFED_FED_META_SOURCE_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "fed/wrapper.h"
#include "rdf/triple_store.h"

namespace lakefed::fed {

class FederatedEngine;

// Vocabulary root of the meta tables. Class IRIs are kSysNamespace +
// "Metric" / "Source" / "Query" / "Cache" / "Scheduler"; predicates are
// kSysNamespace + camelCase field names; subjects are
// "http://lakefed.io/sys/<table>/<key>".
inline constexpr char kSysNamespace[] = "http://lakefed.io/sys#";
inline constexpr char kSysSourceId[] = "sys";

// Point-in-time worker-pool state for sys.scheduler, in fed-visible form
// (mirrors svc::Scheduler::Stats without the dependency).
struct SchedulerInfo {
  size_t workers = 0;
  size_t io_threads = 0;
  uint64_t steps = 0;
  uint64_t steals = 0;
  uint64_t wakes = 0;
  uint64_t io_jobs = 0;
  uint64_t yields = 0;
  uint64_t blocks = 0;
  uint64_t done = 0;
  uint64_t parks = 0;
  uint64_t unparks = 0;
  size_t injector_depth = 0;
  size_t io_queue_depth = 0;
  std::vector<size_t> deque_depths;  // one entry per worker
};

class MetaSource : public SourceWrapper {
 public:
  struct Providers {
    // Worker-pool state for sys.scheduler (null = table stays empty).
    std::function<SchedulerInfo()> scheduler;
  };

  // `engine` must outlive the meta-source — which it does by construction
  // when the engine owns the wrapper via RegisterSource.
  explicit MetaSource(const FederatedEngine* engine,
                      Providers providers = {});

  const std::string& id() const override { return id_; }
  SourceKind kind() const override { return SourceKind::kRdf; }
  std::vector<mapping::RdfMt> Molecules() const override;
  Status Execute(const SubQuery& subquery,
                 const WrapperContext& ctx) override;

  // Monitoring data changes between any two queries; an ever-advancing
  // version keeps the sub-answer cache from replaying stale snapshots.
  uint64_t DataVersion() const override {
    return version_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // The sys.* table names ("metrics", "sources", ...), in display order.
  static const std::vector<std::string>& Tables();

  // Builds the point-in-time snapshot store of one table ("" = all), the
  // same data Execute queries. Exposed for the shell's `.sys` and tests.
  void BuildSnapshot(const std::string& table, rdf::TripleStore* store) const;

  // Aligned text rendering of one table for the shell's `.sys <table>`.
  std::string RenderTable(const std::string& table) const;

 private:
  void PopulateMetrics(rdf::TripleStore* store) const;
  void PopulateSources(rdf::TripleStore* store) const;
  void PopulateQueries(rdf::TripleStore* store) const;
  void PopulateCache(rdf::TripleStore* store) const;
  void PopulateScheduler(rdf::TripleStore* store) const;

  const std::string id_ = kSysSourceId;
  const FederatedEngine* engine_;
  Providers providers_;
  mutable std::atomic<uint64_t> version_{0};
};

}  // namespace lakefed::fed

#endif  // LAKEFED_FED_META_SOURCE_H_
