#include "fed/breaker.h"

namespace lakefed::fed {

std::string BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

BreakerRegistry::Breaker& BreakerRegistry::Get(const std::string& source_id) {
  return breakers_[source_id];
}

bool BreakerRegistry::AllowRequest(const std::string& source_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = Get(source_id);
  switch (b.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const auto cooldown =
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(
                  config_.open_cooldown_ms));
      if (Clock::now() - b.opened_at >= cooldown) {
        b.state = BreakerState::kHalfOpen;
        ++b.times_half_open;
        b.probe_in_flight = true;
        BumpRoutingEpoch();
        return true;  // this caller is the probe
      }
      ++b.rejected_requests;
      return false;
    }
    case BreakerState::kHalfOpen:
      if (!b.probe_in_flight) {
        b.probe_in_flight = true;
        return true;
      }
      ++b.rejected_requests;
      return false;  // hold further traffic until the probe reports
  }
  return true;
}

void BreakerRegistry::OnSuccess(const std::string& source_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = Get(source_id);
  if (b.state != BreakerState::kClosed) {
    ++b.times_closed;
    BumpRoutingEpoch();
  }
  b.state = BreakerState::kClosed;
  b.consecutive_failures = 0;
  b.probe_in_flight = false;
}

void BreakerRegistry::OnFailure(const std::string& source_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = Get(source_id);
  ++b.total_failures;
  ++b.consecutive_failures;
  b.probe_in_flight = false;
  if (b.state == BreakerState::kHalfOpen ||
      b.consecutive_failures >= config_.failure_threshold) {
    if (b.state != BreakerState::kOpen) {
      ++b.times_opened;
      BumpRoutingEpoch();
    }
    b.state = BreakerState::kOpen;
    b.opened_at = Clock::now();
  }
}

void BreakerRegistry::OnAbandoned(const std::string& source_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(source_id);
  if (it != breakers_.end()) it->second.probe_in_flight = false;
}

BreakerState BreakerRegistry::state(const std::string& source_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(source_id);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

bool BreakerRegistry::IsOpen(const std::string& source_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(source_id);
  return it != breakers_.end() && it->second.state != BreakerState::kClosed;
}

bool BreakerRegistry::ShouldAvoid(const std::string& source_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(source_id);
  if (it == breakers_.end() || it->second.state != BreakerState::kOpen) {
    return false;
  }
  const auto cooldown = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(config_.open_cooldown_ms));
  return Clock::now() - it->second.opened_at < cooldown;
}

std::vector<BreakerRegistry::Entry> BreakerRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(breakers_.size());
  for (const auto& [id, b] : breakers_) {
    out.push_back({id, b.state, b.consecutive_failures, b.total_failures,
                   b.rejected_requests, b.times_opened, b.times_half_open,
                   b.times_closed});
  }
  return out;
}

void BreakerRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!breakers_.empty()) BumpRoutingEpoch();
  breakers_.clear();
}

}  // namespace lakefed::fed
