#include "rdf/dictionary.h"

namespace lakefed::rdf {

TermId Dictionary::Intern(const Term& term) {
  auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  ids_.emplace(term, id);
  return id;
}

std::optional<TermId> Dictionary::Find(const Term& term) const {
  auto it = ids_.find(term);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace lakefed::rdf
