#include "rdf/triple_store.h"

#include <algorithm>
#include <set>

namespace lakefed::rdf {
namespace {

// Key orders of the three permutation indexes, as component permutations
// over (0=subject, 1=predicate, 2=object).
constexpr std::array<std::array<int, 3>, 3> kIndexOrders = {{
    {0, 1, 2},  // SPO
    {1, 2, 0},  // POS
    {2, 0, 1},  // OSP
}};

}  // namespace

void TripleStore::Add(const Triple& triple) {
  Add(triple.subject, triple.predicate, triple.object);
}

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  EncodedTriple t{dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)};
  triples_.push_back(t);
  indexes_valid_ = false;
}

Triple TripleStore::Decode(const EncodedTriple& t) const {
  return Triple{dict_.term(t.s), dict_.term(t.p), dict_.term(t.o)};
}

void TripleStore::EnsureIndexes() const {
  if (indexes_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mu_);
  if (indexes_valid_.load(std::memory_order_relaxed)) return;
  for (int k = 0; k < 3; ++k) {
    const auto& order = kIndexOrders[k];
    auto field = [&](const EncodedTriple& t, int component) -> TermId {
      switch (component) {
        case 0: return t.s;
        case 1: return t.p;
        default: return t.o;
      }
    };
    indexes_[k] = triples_;
    std::sort(indexes_[k].begin(), indexes_[k].end(),
              [&](const EncodedTriple& a, const EncodedTriple& b) {
                for (int c : order) {
                  TermId fa = field(a, c), fb = field(b, c);
                  if (fa != fb) return fa < fb;
                }
                return false;
              });
    // De-duplicate: the store has set semantics.
    indexes_[k].erase(std::unique(indexes_[k].begin(), indexes_[k].end()),
                      indexes_[k].end());
  }
  // Keep `triples_` deduplicated too so size() is honest.
  const_cast<TripleStore*>(this)->triples_ = indexes_[0];
  indexes_valid_.store(true, std::memory_order_release);
}

void TripleStore::MatchVisit(
    const OptTerm& s, const OptTerm& p, const OptTerm& o,
    const std::function<bool(const Triple&)>& fn) const {
  EnsureIndexes();

  // Encode bound components; a bound term absent from the dictionary cannot
  // match anything.
  std::array<std::optional<TermId>, 3> bound;
  const OptTerm* terms[3] = {&s, &p, &o};
  for (int c = 0; c < 3; ++c) {
    if (terms[c]->has_value()) {
      auto id = dict_.Find(**terms[c]);
      if (!id.has_value()) return;
      bound[c] = *id;
    }
  }

  // Choose the index with the longest bound key prefix.
  int best_index = 0, best_prefix = -1;
  for (int k = 0; k < 3; ++k) {
    int prefix = 0;
    for (int c : kIndexOrders[k]) {
      if (!bound[c].has_value()) break;
      ++prefix;
    }
    if (prefix > best_prefix) {
      best_prefix = prefix;
      best_index = k;
    }
  }

  const auto& order = kIndexOrders[best_index];
  const auto& index = indexes_[best_index];
  auto field = [](const EncodedTriple& t, int component) -> TermId {
    switch (component) {
      case 0: return t.s;
      case 1: return t.p;
      default: return t.o;
    }
  };

  // Binary search the range matching the bound prefix.
  auto prefix_less = [&](const EncodedTriple& t, bool upper) {
    // Returns -1/0/1 comparing t's prefix against the bound prefix.
    for (int i = 0; i < best_prefix; ++i) {
      TermId tv = field(t, order[i]);
      TermId bv = *bound[order[i]];
      if (tv != bv) return tv < bv ? -1 : 1;
    }
    (void)upper;
    return 0;
  };
  auto lo = std::lower_bound(index.begin(), index.end(), 0,
                             [&](const EncodedTriple& t, int) {
                               return prefix_less(t, false) < 0;
                             });
  auto hi = std::upper_bound(lo, index.end(), 0,
                             [&](int, const EncodedTriple& t) {
                               return prefix_less(t, true) > 0;
                             });

  for (auto it = lo; it != hi; ++it) {
    bool ok = true;
    for (int c = 0; c < 3; ++c) {
      if (bound[c].has_value() && field(*it, c) != *bound[c]) {
        ok = false;
        break;
      }
    }
    if (ok && !fn(Decode(*it))) return;
  }
}

std::vector<Triple> TripleStore::Match(const OptTerm& s, const OptTerm& p,
                                       const OptTerm& o) const {
  std::vector<Triple> out;
  MatchVisit(s, p, o, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

bool TripleStore::Contains(const Term& s, const Term& p, const Term& o) const {
  bool found = false;
  MatchVisit(s, p, o, [&](const Triple&) {
    found = true;
    return false;
  });
  return found;
}

std::vector<Term> TripleStore::DistinctPredicates() const {
  EnsureIndexes();
  std::vector<Term> out;
  const auto& pos = indexes_[1];  // sorted by predicate first
  for (size_t i = 0; i < pos.size(); ++i) {
    if (i == 0 || pos[i].p != pos[i - 1].p) {
      out.push_back(dict_.term(pos[i].p));
    }
  }
  return out;
}

std::vector<Term> TripleStore::DistinctClasses() const {
  std::set<Term> classes;
  MatchVisit(std::nullopt, Term::Iri(kRdfType), std::nullopt,
             [&](const Triple& t) {
               classes.insert(t.object);
               return true;
             });
  return std::vector<Term>(classes.begin(), classes.end());
}

std::vector<Term> TripleStore::PredicatesOfClass(const Term& cls) const {
  std::set<Term> predicates;
  MatchVisit(std::nullopt, Term::Iri(kRdfType), cls, [&](const Triple& t) {
    MatchVisit(t.subject, std::nullopt, std::nullopt,
               [&](const Triple& inner) {
                 predicates.insert(inner.predicate);
                 return true;
               });
    return true;
  });
  return std::vector<Term>(predicates.begin(), predicates.end());
}

}  // namespace lakefed::rdf
