// Basic graph pattern (BGP) evaluation over a TripleStore: the query
// machinery of a native RDF endpoint. Used by the RDF wrapper to answer
// star-shaped sub-queries.

#ifndef LAKEFED_RDF_BGP_H_
#define LAKEFED_RDF_BGP_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"

namespace lakefed::rdf {

// One position of a triple pattern: either a variable or a concrete term.
struct PatternNode {
  bool is_var = false;
  std::string var;  // without '?'
  Term term;

  static PatternNode Var(std::string name) {
    PatternNode n;
    n.is_var = true;
    n.var = std::move(name);
    return n;
  }
  static PatternNode Const(Term term) {
    PatternNode n;
    n.term = std::move(term);
    return n;
  }

  std::string ToString() const {
    return is_var ? "?" + var : term.ToString();
  }
};

struct TriplePattern {
  PatternNode subject, predicate, object;

  std::string ToString() const {
    return subject.ToString() + " " + predicate.ToString() + " " +
           object.ToString() + " .";
  }

  // Variable names used by this pattern.
  std::vector<std::string> Variables() const;
};

// A solution mapping. std::map for deterministic iteration order.
using Binding = std::map<std::string, Term>;

// Evaluates the conjunction of `patterns`, invoking `fn` once per solution;
// return false from `fn` to stop. Patterns are dynamically reordered by
// boundness (most selective first).
Status EvaluateBgpVisit(const TripleStore& store,
                        const std::vector<TriplePattern>& patterns,
                        const std::function<bool(const Binding&)>& fn);

// Like EvaluateBgpVisit, but solutions must extend `seed` (used for
// OPTIONAL evaluation and dependent joins). The emitted bindings include
// the seed's assignments.
Status EvaluateBgpSeededVisit(const TripleStore& store,
                              const std::vector<TriplePattern>& patterns,
                              const Binding& seed,
                              const std::function<bool(const Binding&)>& fn);

Result<std::vector<Binding>> EvaluateBgp(
    const TripleStore& store, const std::vector<TriplePattern>& patterns);

}  // namespace lakefed::rdf

#endif  // LAKEFED_RDF_BGP_H_
