#include "rdf/bgp.h"

#include <algorithm>

namespace lakefed::rdf {
namespace {

// Resolves a pattern node under a binding: a concrete term, a bound
// variable's value, or a wildcard.
OptTerm Resolve(const PatternNode& node, const Binding& binding) {
  if (!node.is_var) return node.term;
  auto it = binding.find(node.var);
  if (it != binding.end()) return it->second;
  return std::nullopt;
}

// Number of bound components of `pattern` under `binding` (selectivity
// proxy for join ordering).
int Boundness(const TriplePattern& pattern, const Binding& binding) {
  int n = 0;
  if (Resolve(pattern.subject, binding).has_value()) ++n;
  if (Resolve(pattern.predicate, binding).has_value()) ++n;
  if (Resolve(pattern.object, binding).has_value()) ++n;
  return n;
}

// Extends `binding` with the assignment node := term; returns false on a
// conflicting prior assignment. Appends newly bound names to `added`.
bool Bind(const PatternNode& node, const Term& term, Binding* binding,
          std::vector<std::string>* added) {
  if (!node.is_var) return node.term == term;
  auto it = binding->find(node.var);
  if (it != binding->end()) return it->second == term;
  binding->emplace(node.var, term);
  added->push_back(node.var);
  return true;
}

bool Recurse(const TripleStore& store, std::vector<TriplePattern> remaining,
             Binding* binding, const std::function<bool(const Binding&)>& fn) {
  if (remaining.empty()) return fn(*binding);

  // Pick the most-bound pattern next.
  size_t best = 0;
  int best_bound = -1;
  for (size_t i = 0; i < remaining.size(); ++i) {
    int b = Boundness(remaining[i], *binding);
    if (b > best_bound) {
      best_bound = b;
      best = i;
    }
  }
  TriplePattern pattern = remaining[best];
  remaining.erase(remaining.begin() + best);

  bool keep_going = true;
  store.MatchVisit(
      Resolve(pattern.subject, *binding),
      Resolve(pattern.predicate, *binding),
      Resolve(pattern.object, *binding), [&](const Triple& t) {
        std::vector<std::string> added;
        bool ok = Bind(pattern.subject, t.subject, binding, &added) &&
                  Bind(pattern.predicate, t.predicate, binding, &added) &&
                  Bind(pattern.object, t.object, binding, &added);
        if (ok) {
          keep_going = Recurse(store, remaining, binding, fn);
        }
        for (const std::string& var : added) binding->erase(var);
        return keep_going;
      });
  return keep_going;
}

}  // namespace

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> out;
  if (subject.is_var) out.push_back(subject.var);
  if (predicate.is_var) out.push_back(predicate.var);
  if (object.is_var) out.push_back(object.var);
  return out;
}

Status EvaluateBgpVisit(const TripleStore& store,
                        const std::vector<TriplePattern>& patterns,
                        const std::function<bool(const Binding&)>& fn) {
  return EvaluateBgpSeededVisit(store, patterns, Binding{}, fn);
}

Status EvaluateBgpSeededVisit(
    const TripleStore& store, const std::vector<TriplePattern>& patterns,
    const Binding& seed, const std::function<bool(const Binding&)>& fn) {
  if (patterns.empty()) {
    return Status::InvalidArgument("empty basic graph pattern");
  }
  Binding binding = seed;
  Recurse(store, patterns, &binding, fn);
  return Status::OK();
}

Result<std::vector<Binding>> EvaluateBgp(
    const TripleStore& store, const std::vector<TriplePattern>& patterns) {
  std::vector<Binding> out;
  LAKEFED_RETURN_NOT_OK(EvaluateBgpVisit(store, patterns,
                                         [&](const Binding& b) {
                                           out.push_back(b);
                                           return true;
                                         }));
  return out;
}

}  // namespace lakefed::rdf
