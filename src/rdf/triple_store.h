// TripleStore: an in-memory RDF store with dictionary encoding and three
// sorted permutation indexes (SPO, POS, OSP), the classic layout of native
// triple stores. Plays the role of the RDF endpoints in the Data Lake.

#ifndef LAKEFED_RDF_TRIPLE_STORE_H_
#define LAKEFED_RDF_TRIPLE_STORE_H_

#include <array>
#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace lakefed::rdf {

// A triple pattern component: a concrete term or a wildcard.
using OptTerm = std::optional<Term>;

class TripleStore {
 public:
  TripleStore() = default;
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  // Adds a triple (duplicates are ignored). Invalidates indexes until the
  // next query, which rebuilds them lazily.
  void Add(const Triple& triple);
  void Add(const Term& s, const Term& p, const Term& o);

  size_t size() const { return triples_.size(); }

  // All triples matching the pattern (nullopt = wildcard), using the most
  // selective permutation index.
  std::vector<Triple> Match(const OptTerm& s, const OptTerm& p,
                            const OptTerm& o) const;

  // Streaming variant; return false from `fn` to stop.
  void MatchVisit(const OptTerm& s, const OptTerm& p, const OptTerm& o,
                  const std::function<bool(const Triple&)>& fn) const;

  bool Contains(const Term& s, const Term& p, const Term& o) const;

  // Distinct predicates in the store (used for RDF-MT extraction).
  std::vector<Term> DistinctPredicates() const;
  // Distinct classes, i.e. objects of rdf:type triples.
  std::vector<Term> DistinctClasses() const;
  // Distinct predicates attached to subjects of the given rdf:type class.
  std::vector<Term> PredicatesOfClass(const Term& cls) const;

  const Dictionary& dictionary() const { return dict_; }

 private:
  struct EncodedTriple {
    TermId s, p, o;
    bool operator==(const EncodedTriple& other) const {
      return s == other.s && p == other.p && o == other.o;
    }
  };

  void EnsureIndexes() const;
  Triple Decode(const EncodedTriple& t) const;

  Dictionary dict_;
  std::vector<EncodedTriple> triples_;
  // Permutation indexes: sorted copies of `triples_` by (s,p,o), (p,o,s),
  // (o,s,p). Rebuilt lazily after inserts. The rebuild is guarded so that
  // concurrent read-only queries (parallel engine sessions) may race to
  // trigger it safely; Add() itself is still single-writer.
  mutable std::array<std::vector<EncodedTriple>, 3> indexes_;
  mutable std::atomic<bool> indexes_valid_{false};
  mutable std::mutex index_mu_;
};

}  // namespace lakefed::rdf

#endif  // LAKEFED_RDF_TRIPLE_STORE_H_
