#include "rdf/ntriples.h"

#include <cctype>

#include "common/string_util.h"

namespace lakefed::rdf {
namespace {

// Cursor over one line.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : line_(line) {}

  void SkipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

  Result<Term> ParseTerm() {
    SkipSpace();
    if (pos_ >= line_.size()) return Err("unexpected end of line");
    char c = line_[pos_];
    if (c == '<') return ParseIri();
    if (c == '"') return ParseLiteral();
    if (c == '_') return ParseBlank();
    return Err(std::string("unexpected character '") + c + "'");
  }

  Status ExpectDot() {
    SkipSpace();
    if (pos_ >= line_.size() || line_[pos_] != '.') {
      return Status::ParseError("expected '.' terminator in: " + line_);
    }
    ++pos_;
    SkipSpace();
    if (pos_ < line_.size()) {
      return Status::ParseError("trailing content after '.': " + line_);
    }
    return Status::OK();
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at column " + std::to_string(pos_) +
                              " in: " + line_);
  }

  Result<Term> ParseIri() {
    size_t end = line_.find('>', pos_ + 1);
    if (end == std::string::npos) return Err("unterminated IRI");
    std::string iri = line_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    return Term::Iri(std::move(iri));
  }

  Result<Term> ParseBlank() {
    if (pos_ + 1 >= line_.size() || line_[pos_ + 1] != ':') {
      return Err("malformed blank node");
    }
    size_t start = pos_ + 2;
    size_t end = start;
    while (end < line_.size() &&
           !std::isspace(static_cast<unsigned char>(line_[end]))) {
      ++end;
    }
    if (end == start) return Err("empty blank node label");
    std::string label = line_.substr(start, end - start);
    pos_ = end;
    return Term::Blank(std::move(label));
  }

  Result<Term> ParseLiteral() {
    std::string lexical;
    size_t i = pos_ + 1;
    bool closed = false;
    while (i < line_.size()) {
      char c = line_[i];
      if (c == '\\') {
        if (i + 1 >= line_.size()) return Err("dangling escape");
        char e = line_[i + 1];
        switch (e) {
          case 'n': lexical.push_back('\n'); break;
          case 't': lexical.push_back('\t'); break;
          case 'r': lexical.push_back('\r'); break;
          case '"': lexical.push_back('"'); break;
          case '\\': lexical.push_back('\\'); break;
          default: return Err("unsupported escape");
        }
        i += 2;
        continue;
      }
      if (c == '"') {
        closed = true;
        ++i;
        break;
      }
      lexical.push_back(c);
      ++i;
    }
    if (!closed) return Err("unterminated literal");
    pos_ = i;
    // Optional @lang or ^^<datatype>.
    if (pos_ < line_.size() && line_[pos_] == '@') {
      size_t start = ++pos_;
      while (pos_ < line_.size() &&
             (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
              line_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ == start) return Err("empty language tag");
      return Term::Literal(std::move(lexical), "",
                           line_.substr(start, pos_ - start));
    }
    if (pos_ + 1 < line_.size() && line_[pos_] == '^' &&
        line_[pos_ + 1] == '^') {
      pos_ += 2;
      if (pos_ >= line_.size() || line_[pos_] != '<') {
        return Err("expected datatype IRI after ^^");
      }
      LAKEFED_ASSIGN_OR_RETURN(Term dt, ParseIri());
      return Term::Literal(std::move(lexical), dt.value());
    }
    return Term::Literal(std::move(lexical));
  }

  const std::string& line_;
  size_t pos_ = 0;
};

}  // namespace

Result<Triple> ParseNTriplesLine(const std::string& line) {
  LineParser parser(line);
  LAKEFED_ASSIGN_OR_RETURN(Term s, parser.ParseTerm());
  if (s.is_literal()) {
    return Status::ParseError("literal as subject: " + line);
  }
  LAKEFED_ASSIGN_OR_RETURN(Term p, parser.ParseTerm());
  if (!p.is_iri()) {
    return Status::ParseError("predicate must be an IRI: " + line);
  }
  LAKEFED_ASSIGN_OR_RETURN(Term o, parser.ParseTerm());
  LAKEFED_RETURN_NOT_OK(parser.ExpectDot());
  return Triple{std::move(s), std::move(p), std::move(o)};
}

Result<std::vector<Triple>> ParseNTriples(const std::string& document) {
  std::vector<Triple> out;
  for (const std::string& raw : SplitString(document, '\n')) {
    std::string_view line = TrimWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    LAKEFED_ASSIGN_OR_RETURN(Triple t, ParseNTriplesLine(std::string(line)));
    out.push_back(std::move(t));
  }
  return out;
}

Result<size_t> LoadNTriples(const std::string& document, TripleStore* store) {
  LAKEFED_ASSIGN_OR_RETURN(std::vector<Triple> triples,
                           ParseNTriples(document));
  for (const Triple& t : triples) store->Add(t);
  return triples.size();
}

std::string WriteNTriples(const std::vector<Triple>& triples) {
  std::string out;
  for (const Triple& t : triples) {
    out += t.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace lakefed::rdf
