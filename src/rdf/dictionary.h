// Dictionary: bidirectional Term <-> dense integer id mapping used by the
// triple store for compact, cache-friendly indexes.

#ifndef LAKEFED_RDF_DICTIONARY_H_
#define LAKEFED_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace lakefed::rdf {

using TermId = uint32_t;

class Dictionary {
 public:
  // Returns the id of `term`, interning it if new.
  TermId Intern(const Term& term);

  // The id of `term` if already interned.
  std::optional<TermId> Find(const Term& term) const;

  const Term& term(TermId id) const { return terms_[id]; }
  size_t size() const { return terms_.size(); }

 private:
  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> ids_;
};

}  // namespace lakefed::rdf

#endif  // LAKEFED_RDF_DICTIONARY_H_
