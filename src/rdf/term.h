// RDF terms (IRI, literal, blank node) and triples.

#ifndef LAKEFED_RDF_TERM_H_
#define LAKEFED_RDF_TERM_H_

#include <cstdint>
#include <functional>
#include <string>

namespace lakefed::rdf {

enum class TermKind { kIri = 0, kLiteral = 1, kBlank = 2 };

class Term {
 public:
  Term() = default;  // empty IRI; use the factories below

  static Term Iri(std::string iri);
  // A literal with optional datatype IRI and language tag (at most one of
  // the two is customarily set).
  static Term Literal(std::string lexical, std::string datatype = "",
                      std::string lang = "");
  static Term Blank(std::string label);

  TermKind kind() const { return kind_; }
  bool is_iri() const { return kind_ == TermKind::kIri; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }
  bool is_blank() const { return kind_ == TermKind::kBlank; }

  // IRI string, lexical form, or blank label depending on kind.
  const std::string& value() const { return value_; }
  const std::string& datatype() const { return datatype_; }
  const std::string& lang() const { return lang_; }

  // N-Triples rendering: <iri> | "lex" | "lex"^^<dt> | "lex"@lang | _:label
  std::string ToString() const;

  // Total order: by kind, then value, then datatype, then lang.
  int Compare(const Term& other) const;
  bool operator==(const Term& other) const { return Compare(other) == 0; }
  bool operator!=(const Term& other) const { return Compare(other) != 0; }
  bool operator<(const Term& other) const { return Compare(other) < 0; }

  size_t Hash() const;

 private:
  TermKind kind_ = TermKind::kIri;
  std::string value_;
  std::string datatype_;
  std::string lang_;
};

struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

struct Triple {
  Term subject, predicate, object;

  bool operator==(const Triple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }

  std::string ToString() const;  // N-Triples line without trailing newline
};

// Well-known vocabulary IRIs.
inline constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kXsdInteger[] = "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr char kXsdDouble[] = "http://www.w3.org/2001/XMLSchema#double";
inline constexpr char kXsdString[] = "http://www.w3.org/2001/XMLSchema#string";

}  // namespace lakefed::rdf

#endif  // LAKEFED_RDF_TERM_H_
