// Minimal N-Triples reader/writer (the subset needed to exchange LSLOD-style
// data): IRIs, plain/typed/language literals, blank nodes, '#' comments.

#ifndef LAKEFED_RDF_NTRIPLES_H_
#define LAKEFED_RDF_NTRIPLES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"

namespace lakefed::rdf {

// Parses a single N-Triples line (must contain one triple).
Result<Triple> ParseNTriplesLine(const std::string& line);

// Parses a whole document; blank lines and '#' comment lines are skipped.
Result<std::vector<Triple>> ParseNTriples(const std::string& document);

// Loads a document into a store; returns the number of triples added.
Result<size_t> LoadNTriples(const std::string& document, TripleStore* store);

// Serializes triples to an N-Triples document.
std::string WriteNTriples(const std::vector<Triple>& triples);

}  // namespace lakefed::rdf

#endif  // LAKEFED_RDF_NTRIPLES_H_
