#include "rdf/term.h"

#include "common/string_util.h"

namespace lakefed::rdf {

Term Term::Iri(std::string iri) {
  Term t;
  t.kind_ = TermKind::kIri;
  t.value_ = std::move(iri);
  return t;
}

Term Term::Literal(std::string lexical, std::string datatype,
                   std::string lang) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.value_ = std::move(lexical);
  t.datatype_ = std::move(datatype);
  t.lang_ = std::move(lang);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind_ = TermKind::kBlank;
  t.value_ = std::move(label);
  return t;
}

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kIri:
      return "<" + value_ + ">";
    case TermKind::kBlank:
      return "_:" + value_;
    case TermKind::kLiteral: {
      std::string escaped = ReplaceAll(value_, "\\", "\\\\");
      escaped = ReplaceAll(escaped, "\"", "\\\"");
      escaped = ReplaceAll(escaped, "\n", "\\n");
      std::string out = "\"" + escaped + "\"";
      if (!lang_.empty()) {
        out += "@" + lang_;
      } else if (!datatype_.empty()) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return "";
}

int Term::Compare(const Term& other) const {
  if (kind_ != other.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(other.kind_) ? -1 : 1;
  }
  if (int c = value_.compare(other.value_); c != 0) return c < 0 ? -1 : 1;
  if (int c = datatype_.compare(other.datatype_); c != 0) return c < 0 ? -1 : 1;
  if (int c = lang_.compare(other.lang_); c != 0) return c < 0 ? -1 : 1;
  return 0;
}

size_t Term::Hash() const {
  size_t h = std::hash<std::string>{}(value_);
  h = h * 31 + static_cast<size_t>(kind_);
  if (!datatype_.empty()) h = h * 31 + std::hash<std::string>{}(datatype_);
  if (!lang_.empty()) h = h * 31 + std::hash<std::string>{}(lang_);
  return h;
}

std::string Triple::ToString() const {
  return subject.ToString() + " " + predicate.ToString() + " " +
         object.ToString() + " .";
}

}  // namespace lakefed::rdf
