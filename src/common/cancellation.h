// CancellationToken: cooperative cancellation and deadline propagation for
// streaming query sessions. A token is a cheap shared handle; every operator
// thread, wrapper and delay channel of one session holds a copy and polls
// IsCancelled() (a relaxed atomic load on the hot path).
//
// Cancellation has two triggers:
//  * Cancel() / CancelWith(status) — an explicit request (ResultStream::Cancel).
//  * An expired deadline — promoted lazily: the first caller of IsCancelled()
//    (or SleepFor/queue wait) past the deadline cancels the token for
//    everyone with kDeadlineExceeded.
// Either way the registered OnCancel callbacks fire exactly once; the
// executor uses them to close every queue of the dataflow so blocked
// producers and consumers wake promptly instead of draining.
//
// A default-constructed token is "null": it never cancels, has no deadline,
// and costs one branch per check — the pre-session blocking API runs on it.

#ifndef LAKEFED_COMMON_CANCELLATION_H_
#define LAKEFED_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"

namespace lakefed {

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() = default;  // null token: never cancels

  // A token that can be cancelled explicitly.
  static CancellationToken Cancellable();
  // A cancellable token that also self-cancels (kDeadlineExceeded) once
  // `deadline` passes.
  static CancellationToken WithDeadline(Clock::time_point deadline);

  bool can_cancel() const { return state_ != nullptr; }

  // True once cancelled or past the deadline. Observing an expired deadline
  // promotes it to a full cancellation (fires the OnCancel callbacks).
  bool IsCancelled() const;

  // OK while live; the cancellation reason (kCancelled or
  // kDeadlineExceeded) afterwards.
  Status ToStatus() const;

  void Cancel();                  // cancel with kCancelled
  void CancelWith(Status reason); // cancel with a specific reason; first wins

  std::optional<Clock::time_point> deadline() const;

  // Registers `fn` to run exactly once upon cancellation — immediately if
  // the token is already cancelled. Callbacks run on the cancelling thread
  // and must not call back into the token. Anything they reference must be
  // kept alive by the closure (capture shared_ptrs).
  void OnCancel(std::function<void()> fn);

  // Sleeps for `ms` milliseconds, capped at the deadline and woken early by
  // cancellation. Returns IsCancelled() afterwards. On a null token this is
  // a plain sleep returning false.
  bool SleepFor(double ms) const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::mutex mu;
    std::condition_variable cv;
    Status reason;  // guarded by mu; set once, readable after `cancelled`
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::vector<std::function<void()>> callbacks;  // guarded by mu
  };

  explicit CancellationToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace lakefed

#endif  // LAKEFED_COMMON_CANCELLATION_H_
