#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace lakefed {

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("retry max_attempts must be >= 1, got " +
                                   std::to_string(max_attempts));
  }
  if (initial_backoff_ms < 0 || max_backoff_ms < 0) {
    return Status::InvalidArgument("retry backoff must be non-negative");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "retry backoff_multiplier must be >= 1, got " +
        std::to_string(backoff_multiplier));
  }
  if (jitter < 0 || jitter > 1.0) {
    return Status::InvalidArgument("retry jitter must be in [0, 1], got " +
                                   std::to_string(jitter));
  }
  if (attempt_timeout_ms < 0) {
    return Status::InvalidArgument("retry attempt_timeout_ms must be >= 0");
  }
  return Status::OK();
}

double BackoffMs(const RetryPolicy& policy, int retry_number, Rng* rng) {
  if (retry_number < 1) retry_number = 1;
  double backoff = policy.initial_backoff_ms *
                   std::pow(policy.backoff_multiplier, retry_number - 1);
  backoff = std::min(backoff, policy.max_backoff_ms);
  if (policy.jitter > 0 && rng != nullptr && backoff > 0) {
    backoff *= rng->UniformDouble(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  return backoff;
}

CancellationToken MakeAttemptToken(const CancellationToken& session,
                                   double attempt_timeout_ms) {
  if (attempt_timeout_ms <= 0) return session;
  auto timeout = std::chrono::duration_cast<CancellationToken::Clock::duration>(
      std::chrono::duration<double, std::milli>(attempt_timeout_ms));
  CancellationToken::Clock::time_point deadline =
      CancellationToken::Clock::now() + timeout;
  // The attempt must also end at the session deadline, whichever is sooner.
  std::optional<CancellationToken::Clock::time_point> session_deadline =
      session.deadline();
  if (session_deadline.has_value() && *session_deadline < deadline) {
    deadline = *session_deadline;
  }
  CancellationToken attempt = CancellationToken::WithDeadline(deadline);
  if (session.can_cancel()) {
    // Link: cancelling the session cancels the in-flight attempt with the
    // session's reason, so teardown is prompt and not misread as a
    // retryable per-attempt timeout.
    CancellationToken session_copy = session;
    session_copy.OnCancel([attempt, session_copy]() mutable {
      attempt.CancelWith(session_copy.ToStatus());
    });
  }
  return attempt;
}

Status RunWithRetry(
    const RetryPolicy& policy, const CancellationToken& token, Rng* rng,
    const std::function<Status(const CancellationToken&)>& attempt,
    int* retries_out, const std::function<double(int)>& attempt_timeout_fn) {
  if (retries_out != nullptr) *retries_out = 0;
  Status last = Status::Internal("retry loop made no attempt");
  for (int i = 1; i <= policy.max_attempts; ++i) {
    if (token.IsCancelled()) return token.ToStatus();
    if (i > 1 && retries_out != nullptr) ++*retries_out;
    const double timeout_ms = attempt_timeout_fn != nullptr
                                  ? attempt_timeout_fn(i)
                                  : policy.attempt_timeout_ms;
    last = attempt(MakeAttemptToken(token, timeout_ms));
    if (last.ok() || !last.IsRetryable()) return last;
    // A deadline error caused by the *session* deadline (not the
    // per-attempt timeout) is terminal.
    if (token.IsCancelled()) return token.ToStatus();
    if (i < policy.max_attempts) {
      double backoff = BackoffMs(policy, i, rng);
      if (backoff > 0 && token.SleepFor(backoff)) return token.ToStatus();
    }
  }
  return last;
}

}  // namespace lakefed
