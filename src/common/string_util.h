// Small string helpers shared across modules.

#ifndef LAKEFED_COMMON_STRING_UTIL_H_
#define LAKEFED_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lakefed {

// Splits `input` on `delim`; empty pieces are kept.
std::vector<std::string> SplitString(std::string_view input, char delim);

// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

std::string ToLowerAscii(std::string_view s);
std::string ToUpperAscii(std::string_view s);

// True if `haystack` contains `needle` (case sensitive).
bool Contains(std::string_view haystack, std::string_view needle);

// Replaces every occurrence of `from` in `s` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

// SQL LIKE matching: '%' matches any run, '_' matches one char.
bool SqlLikeMatch(std::string_view value, std::string_view pattern);

}  // namespace lakefed

#endif  // LAKEFED_COMMON_STRING_UTIL_H_
