#include "common/cancellation.h"

#include <thread>
#include <utility>

namespace lakefed {

CancellationToken CancellationToken::Cancellable() {
  return CancellationToken(std::make_shared<State>());
}

CancellationToken CancellationToken::WithDeadline(Clock::time_point deadline) {
  auto state = std::make_shared<State>();
  state->has_deadline = true;
  state->deadline = deadline;
  return CancellationToken(std::move(state));
}

bool CancellationToken::IsCancelled() const {
  if (state_ == nullptr) return false;
  if (state_->cancelled.load(std::memory_order_acquire)) return true;
  if (state_->has_deadline && Clock::now() >= state_->deadline) {
    // Lazy promotion: whoever observes the expiry first cancels for all.
    const_cast<CancellationToken*>(this)->CancelWith(
        Status::DeadlineExceeded("query deadline exceeded"));
    return true;
  }
  return false;
}

Status CancellationToken::ToStatus() const {
  if (!IsCancelled()) return Status::OK();
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->reason;
}

void CancellationToken::Cancel() {
  CancelWith(Status::Cancelled("query cancelled"));
}

void CancellationToken::CancelWith(Status reason) {
  if (state_ == nullptr) return;
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->cancelled.load(std::memory_order_relaxed)) return;
    state_->reason =
        reason.ok() ? Status::Cancelled("query cancelled") : std::move(reason);
    state_->cancelled.store(true, std::memory_order_release);
    callbacks.swap(state_->callbacks);
  }
  state_->cv.notify_all();
  // Outside the lock: callbacks take their own locks (queue closure).
  for (const std::function<void()>& fn : callbacks) fn();
}

std::optional<CancellationToken::Clock::time_point>
CancellationToken::deadline() const {
  if (state_ == nullptr || !state_->has_deadline) return std::nullopt;
  return state_->deadline;
}

void CancellationToken::OnCancel(std::function<void()> fn) {
  if (state_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->cancelled.load(std::memory_order_relaxed)) {
      state_->callbacks.push_back(std::move(fn));
      return;
    }
  }
  fn();  // already cancelled: fire immediately
}

bool CancellationToken::SleepFor(double ms) const {
  auto duration = std::chrono::duration<double, std::milli>(ms);
  if (state_ == nullptr) {
    std::this_thread::sleep_for(duration);
    return false;
  }
  Clock::time_point until =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(duration);
  if (state_->has_deadline && state_->deadline < until) {
    until = state_->deadline;
  }
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait_until(lock, until, [&] {
      return state_->cancelled.load(std::memory_order_relaxed);
    });
  }
  return IsCancelled();
}

}  // namespace lakefed
