// Status and Result<T>: the error-handling model used across LakeFed.
//
// LakeFed never throws exceptions across library boundaries. Every fallible
// operation returns a Status (or a Result<T> which is a Status plus a value).
// The style follows Apache Arrow / RocksDB.

#ifndef LAKEFED_COMMON_STATUS_H_
#define LAKEFED_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace lakefed {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kTypeError,
  kIoError,
  // A source (or other dependency) is temporarily unreachable: the request
  // may succeed if retried. The retry layer treats kUnavailable, kIoError
  // and kDeadlineExceeded (per-attempt timeouts) as transient.
  kUnavailable,
  // The system is over capacity and deliberately shed the request (admission
  // control, quota exhaustion). Unlike kUnavailable this is a load-control
  // decision, not a failure: the caller should back off, not fail over.
  kResourceExhausted,
};

// Human-readable name of a StatusCode, e.g. "Invalid argument".
std::string StatusCodeToString(StatusCode code);

// A Status holds either success (OK) or an error code plus a message.
// OK status is cheap to construct and copy (no allocation).
class Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  // True for errors that may succeed if the operation is retried: transient
  // source/network failures (kUnavailable, kIoError) and per-attempt
  // timeouts (kDeadlineExceeded). Everything else — parse errors, planning
  // errors, cancellation, internal errors — is permanent: retrying would
  // re-fail identically or repeat work the caller asked to stop.
  bool IsRetryable() const {
    switch (code()) {
      case StatusCode::kUnavailable:
      case StatusCode::kIoError:
      case StatusCode::kDeadlineExceeded:
        return true;
      default:
        return false;
    }
  }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  // Returns a copy of this status with `context` prepended to the message.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK.
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Result<T>: either a value of type T or an error Status. Never holds an OK
// status without a value.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  // Preconditions: ok(). Aborts otherwise (programming error).
  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace lakefed

// Propagates a non-OK Status from an expression.
#define LAKEFED_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::lakefed::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (false)

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// assigns the value to `lhs` (which may be a declaration).
#define LAKEFED_CONCAT_IMPL(x, y) x##y
#define LAKEFED_CONCAT(x, y) LAKEFED_CONCAT_IMPL(x, y)
#define LAKEFED_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto LAKEFED_CONCAT(_result_, __LINE__) = (rexpr);                 \
  if (!LAKEFED_CONCAT(_result_, __LINE__).ok())                      \
    return LAKEFED_CONCAT(_result_, __LINE__).status();              \
  lhs = std::move(LAKEFED_CONCAT(_result_, __LINE__)).value()

#endif  // LAKEFED_COMMON_STATUS_H_
