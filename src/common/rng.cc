#include "common/rng.h"

#include <cmath>
#include <vector>

namespace lakefed {

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  // Inverse-CDF sampling over the truncated zeta weights. n is small in all
  // our uses (value domains), so the linear scan is fine.
  double total = 0;
  for (size_t r = 0; r < n; ++r) total += 1.0 / std::pow(r + 1.0, s);
  double u = UniformDouble(0.0, total);
  double acc = 0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(r + 1.0, s);
    if (u <= acc) return r;
  }
  return n - 1;
}

std::string Rng::RandomWord(size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[UniformInt(0, 25)]);
  }
  return out;
}

}  // namespace lakefed
