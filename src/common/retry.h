// RetryPolicy: bounded retries with exponential backoff and seeded jitter
// for transient source failures (Status::IsRetryable()). The federated
// executor re-runs failed leaf sub-queries under a policy; RunWithRetry is
// the generic loop for simpler call sites and for unit tests.
//
// Determinism: jitter is sampled from a caller-owned common/rng Rng, so the
// same seed produces the same backoff schedule — fault-recovery tests and
// benches are exactly reproducible.

#ifndef LAKEFED_COMMON_RETRY_H_
#define LAKEFED_COMMON_RETRY_H_

#include <functional>
#include <string>

#include "common/cancellation.h"
#include "common/rng.h"
#include "common/status.h"

namespace lakefed {

struct RetryPolicy {
  // Total attempts including the first one. 1 = no retries (the default:
  // fault-free executions behave exactly like the pre-retry engine).
  int max_attempts = 1;

  // Backoff before retry k (1-based) is
  //   min(initial_backoff_ms * multiplier^(k-1), max_backoff_ms)
  // scaled by a jitter factor uniform in [1 - jitter, 1 + jitter].
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 100.0;
  double jitter = 0.5;  // fraction of the backoff; 0 = deterministic delay

  // Upper bound on one attempt's duration, enforced via a per-attempt
  // deadline token. 0 = unbounded (only the session deadline applies). An
  // attempt that exceeds it fails with kDeadlineExceeded, which is
  // retryable — distinct from the session deadline, which is terminal.
  double attempt_timeout_ms = 0;

  bool enabled() const { return max_attempts > 1; }

  Status Validate() const;
};

// The backoff to sleep before retry `retry_number` (1-based: the delay
// between attempt k and attempt k+1), with jitter sampled from `rng`.
double BackoffMs(const RetryPolicy& policy, int retry_number, Rng* rng);

// Runs `attempt` up to policy.max_attempts times. Each invocation receives
// a per-attempt token: the session `token` bounded additionally by
// policy.attempt_timeout_ms. Stops early on success, on a permanent
// (non-retryable) error, or when `token` itself is cancelled/expired — the
// session's cancellation is never retried. Sleeps the backoff between
// attempts (observing `token`). `retries_out`, when non-null, receives the
// number of re-executions performed. `attempt_timeout_fn`, when non-null,
// overrides policy.attempt_timeout_ms with a per-attempt value (the
// adaptive-timeout hook: attempt number, 1-based, to timeout in ms; <= 0 =
// unbounded) — either way the timeout is clamped to the session's remaining
// deadline by MakeAttemptToken, so no attempt outlives the deadline fixed
// at admission.
Status RunWithRetry(
    const RetryPolicy& policy, const CancellationToken& token, Rng* rng,
    const std::function<Status(const CancellationToken&)>& attempt,
    int* retries_out = nullptr,
    const std::function<double(int)>& attempt_timeout_fn = nullptr);

// A per-attempt child token: cancellable, bounded by `attempt_timeout_ms`
// (when > 0) and linked to `session` so cancelling the session cancels the
// attempt. With no timeout and no cancellable session token, returns
// `session` unchanged.
CancellationToken MakeAttemptToken(const CancellationToken& session,
                                   double attempt_timeout_ms);

}  // namespace lakefed

#endif  // LAKEFED_COMMON_RETRY_H_
