#include "common/status.h"

namespace lakefed {

std::string StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "Invalid argument";
    case StatusCode::kParseError: return "Parse error";
    case StatusCode::kNotFound: return "Not found";
    case StatusCode::kAlreadyExists: return "Already exists";
    case StatusCode::kOutOfRange: return "Out of range";
    case StatusCode::kNotImplemented: return "Not implemented";
    case StatusCode::kInternal: return "Internal error";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "Deadline exceeded";
    case StatusCode::kTypeError: return "Type error";
    case StatusCode::kIoError: return "IO error";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kResourceExhausted: return "Resource exhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return state_ == nullptr ? kEmpty : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return StatusCodeToString(state_->code) + ": " + state_->message;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(state_->code, context + ": " + state_->message);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace lakefed
