// Minimal leveled logging. Controlled at runtime via SetLogLevel or the
// LAKEFED_LOG_LEVEL environment variable (error|warn|info|debug).
//
// LAKEFED_LOG(kInfo) << "message";
// LAKEFED_CHECK(cond) << "details";   // aborts the process when cond is false

#ifndef LAKEFED_COMMON_LOGGING_H_
#define LAKEFED_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace lakefed {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Accumulates one log line and emits it (thread-safely) on destruction.
// When `fatal` is set, the destructor aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace lakefed

#define LAKEFED_LOG(level)                                              \
  if (static_cast<int>(::lakefed::LogLevel::level) >                    \
      static_cast<int>(::lakefed::GetLogLevel())) {                     \
  } else                                                                \
    ::lakefed::internal_logging::LogMessage(::lakefed::LogLevel::level, \
                                            __FILE__, __LINE__)         \
        .stream()

#define LAKEFED_CHECK(cond)                                              \
  if (cond) {                                                            \
  } else                                                                 \
    ::lakefed::internal_logging::LogMessage(::lakefed::LogLevel::kError, \
                                            __FILE__, __LINE__,          \
                                            /*fatal=*/true)              \
        .stream()                                                        \
        << "Check failed: " #cond " "

#endif  // LAKEFED_COMMON_LOGGING_H_
