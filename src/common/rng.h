// Seeded random helpers. All randomness in LakeFed (synthetic data, network
// delay sampling) goes through Rng so experiments are reproducible.

#ifndef LAKEFED_COMMON_RNG_H_
#define LAKEFED_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>

namespace lakefed {

class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  // Bernoulli with probability p of true.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  // Gamma-distributed sample with shape alpha and scale beta (mean =
  // alpha * beta). Matches numpy.random.gamma(alpha, beta) used by the paper.
  double Gamma(double alpha, double beta) {
    std::gamma_distribution<double> dist(alpha, beta);
    return dist(engine_);
  }

  // Zipf-like skewed choice over [0, n): rank r with weight 1/(r+1)^s.
  // Used by the synthetic data generator to create realistic value skew.
  size_t Zipf(size_t n, double s = 1.0);

  // Random lowercase ASCII identifier of the given length.
  std::string RandomWord(size_t length);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lakefed

#endif  // LAKEFED_COMMON_RNG_H_
