#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/string_util.h"

namespace lakefed {
namespace {

std::atomic<LogLevel> g_level{[] {
  const char* env = std::getenv("LAKEFED_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  std::string v = ToLowerAscii(env);
  if (v == "error") return LogLevel::kError;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "info") return LogLevel::kInfo;
  if (v == "debug") return LogLevel::kDebug;
  return LogLevel::kWarn;
}()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

std::mutex& EmitMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace lakefed
