// BlockingQueue<T>: a bounded multi-producer multi-consumer queue used to
// connect wrapper threads and physical operator threads in the federated
// engine (the ANAPSID-style adaptive dataflow).
//
// Semantics:
//  * Push blocks while the queue is full (back-pressure).
//  * Pop blocks while the queue is empty and not closed.
//  * Close() wakes all waiters; after close, Push is rejected and Pop drains
//    remaining items, then reports exhaustion.
//
// The token-aware overloads additionally observe a CancellationToken:
//  * Push(item, token) returns false and Pop(token) returns nullopt as soon
//    as the token is cancelled — Pop does NOT drain remaining items, so a
//    cancelled dataflow tears down promptly.
//  * A token deadline bounds every wait, so a thread blocked on a full or
//    empty queue notices the expiry without outside help.
//  * Explicit Cancel() does not signal the queue's own condition variables;
//    the session wires `token.OnCancel([q] { q->Close(); })` for each queue
//    so blocked waiters wake immediately (closing is idempotent).

#ifndef LAKEFED_COMMON_BLOCKING_QUEUE_H_
#define LAKEFED_COMMON_BLOCKING_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/cancellation.h"
#include "common/stopwatch.h"

namespace lakefed {

// Optional queue-wait observer (the federated executor attaches one per
// operator queue when metrics collection is on): reports every blocking
// wait with its duration plus a queue-depth occupancy sample per push.
// Implementations must be thread-safe; callbacks run outside the queue
// lock. With no observer attached the queue's code path is unchanged — no
// clock reads, no virtual calls.
class QueueWaitObserver {
 public:
  virtual ~QueueWaitObserver() = default;
  // A Push had to wait `wait_ms` for space. Reported even when the wait
  // ended in close, cancellation or deadline expiry rather than a
  // successful push, so teardown stalls are accounted too.
  virtual void OnPushWait(double wait_ms) = 0;
  // A Pop had to wait `wait_ms` for an item (same accounting contract).
  virtual void OnPopWait(double wait_ms) = 0;
  // Queue depth right after a successful push (occupancy sample).
  virtual void OnDepth(size_t depth) = 0;
};

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = 1024) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Counts every successful Push (used for operator statistics). Must be
  // set before producers start.
  void set_push_counter(std::shared_ptr<std::atomic<uint64_t>> counter) {
    push_counter_ = std::move(counter);
  }

  // Attaches the wait observer. Like the push counter, must be set before
  // any producer or consumer thread starts.
  void set_wait_observer(std::shared_ptr<QueueWaitObserver> observer) {
    observer_ = std::move(observer);
  }

  // Blocks until there is room. Returns false (and drops the item) if the
  // queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool must_wait = !closed_ && items_.size() >= capacity_;
    double wait_ms = 0;
    if (must_wait && observer_ != nullptr) {
      Stopwatch wait;
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      wait_ms = wait.ElapsedMillis();
    } else if (must_wait) {
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) {
      lock.unlock();
      if (observer_ != nullptr && must_wait) observer_->OnPushWait(wait_ms);
      return false;
    }
    items_.push_back(std::move(item));
    const size_t depth = items_.size();
    lock.unlock();
    if (push_counter_ != nullptr) {
      push_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    if (observer_ != nullptr) {
      if (must_wait) observer_->OnPushWait(wait_ms);
      observer_->OnDepth(depth);
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns nullopt on exhaustion.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    const bool must_wait = !closed_ && items_.empty();
    double wait_ms = 0;
    if (must_wait && observer_ != nullptr) {
      Stopwatch wait;
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      wait_ms = wait.ElapsedMillis();
    } else if (must_wait) {
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    }
    if (items_.empty()) {  // closed and drained
      lock.unlock();
      if (observer_ != nullptr && must_wait) observer_->OnPopWait(wait_ms);
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    if (observer_ != nullptr && must_wait) observer_->OnPopWait(wait_ms);
    not_full_.notify_one();
    return item;
  }

  // Token-aware Push: additionally gives up (returning false) once `token`
  // is cancelled or its deadline passes. The token check runs outside the
  // queue lock — a cancellation callback may close this very queue.
  bool Push(T item, const CancellationToken& token) {
    double wait_ms = 0;
    bool waited = false;
    for (;;) {
      if (token.IsCancelled()) {
        ReportPushWait(waited, wait_ms);
        return false;
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (closed_) {
        lock.unlock();
        ReportPushWait(waited, wait_ms);
        return false;
      }
      if (items_.size() < capacity_) {
        items_.push_back(std::move(item));
        const size_t depth = items_.size();
        lock.unlock();
        if (push_counter_ != nullptr) {
          push_counter_->fetch_add(1, std::memory_order_relaxed);
        }
        ReportPushWait(waited, wait_ms);
        if (observer_ != nullptr) observer_->OnDepth(depth);
        not_empty_.notify_one();
        return true;
      }
      waited = true;
      bool ok;
      if (observer_ != nullptr) {
        Stopwatch wait;
        ok = WaitFor(not_full_, lock, token,
                     [&] { return closed_ || items_.size() < capacity_; });
        wait_ms += wait.ElapsedMillis();
      } else {
        ok = WaitFor(not_full_, lock, token,
                     [&] { return closed_ || items_.size() < capacity_; });
      }
      if (!ok) {
        // Deadline expired while the queue was still full: promote the
        // expiry to cancellation (outside the lock — the OnCancel callback
        // may close this very queue) and give up instead of spinning.
        lock.unlock();
        token.IsCancelled();
        ReportPushWait(waited, wait_ms);
        return false;
      }
    }
  }

  // Token-aware Pop: returns nullopt as soon as `token` is cancelled, even
  // if items remain (teardown must not drain), and wakes at the token's
  // deadline while blocked on an empty queue.
  std::optional<T> Pop(const CancellationToken& token) {
    double wait_ms = 0;
    bool waited = false;
    for (;;) {
      if (token.IsCancelled()) {
        ReportPopWait(waited, wait_ms);
        return std::nullopt;
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (!items_.empty()) {
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        ReportPopWait(waited, wait_ms);
        not_full_.notify_one();
        return item;
      }
      if (closed_) {
        lock.unlock();
        ReportPopWait(waited, wait_ms);
        return std::nullopt;
      }
      waited = true;
      bool ok;
      if (observer_ != nullptr) {
        Stopwatch wait;
        ok = WaitFor(not_empty_, lock, token,
                     [&] { return closed_ || !items_.empty(); });
        wait_ms += wait.ElapsedMillis();
      } else {
        ok = WaitFor(not_empty_, lock, token,
                     [&] { return closed_ || !items_.empty(); });
      }
      if (!ok) {
        // Deadline expired on an empty queue: promote and return promptly.
        lock.unlock();
        token.IsCancelled();
        ReportPopWait(waited, wait_ms);
        return std::nullopt;
      }
    }
  }

  // Non-blocking pop; nullopt if currently empty (regardless of closed state).
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Marks the queue closed. Producers are rejected from now on; consumers
  // drain what is left.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  // True once the queue is closed and all items have been consumed.
  bool exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && items_.empty();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  // Deferred wait reporting for the token-aware loops: waits accumulate
  // across loop iterations and are reported once per call, on every exit
  // path (success, close, cancellation, deadline).
  void ReportPushWait(bool waited, double wait_ms) {
    if (waited && observer_ != nullptr) observer_->OnPushWait(wait_ms);
  }
  void ReportPopWait(bool waited, double wait_ms) {
    if (waited && observer_ != nullptr) observer_->OnPopWait(wait_ms);
  }

  // One bounded wait: until the predicate holds, the token's deadline
  // passes, or (via the OnCancel queue-closing callback) a cancellation
  // closes the queue. Returns true when the predicate held at wake-up;
  // false means the deadline passed with the predicate still false — the
  // caller must treat that as cancellation and bail out, because looping
  // back would make every subsequent wait_until return immediately and
  // turn the wait into a hot spin.
  template <typename Pred>
  static bool WaitFor(std::condition_variable& cv,
                      std::unique_lock<std::mutex>& lock,
                      const CancellationToken& token, Pred pred) {
    auto deadline = token.deadline();
    if (deadline.has_value()) {
      return cv.wait_until(lock, *deadline, pred);
    }
    cv.wait(lock, pred);
    return true;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::shared_ptr<std::atomic<uint64_t>> push_counter_;
  std::shared_ptr<QueueWaitObserver> observer_;
};

}  // namespace lakefed

#endif  // LAKEFED_COMMON_BLOCKING_QUEUE_H_
