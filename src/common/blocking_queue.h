// BlockingQueue<T>: a bounded multi-producer multi-consumer queue used to
// connect wrapper threads and physical operator threads in the federated
// engine (the ANAPSID-style adaptive dataflow).
//
// Semantics:
//  * Push blocks while the queue is full (back-pressure).
//  * Pop blocks while the queue is empty and not closed.
//  * Close() wakes all waiters; after close, Push is rejected and Pop drains
//    remaining items, then reports exhaustion.
//
// The token-aware overloads additionally observe a CancellationToken:
//  * Push(item, token) returns false and Pop(token) returns nullopt as soon
//    as the token is cancelled — Pop does NOT drain remaining items, so a
//    cancelled dataflow tears down promptly.
//  * A token deadline bounds every wait, so a thread blocked on a full or
//    empty queue notices the expiry without outside help.
//  * Explicit Cancel() does not signal the queue's own condition variables;
//    the session wires `token.OnCancel([q] { q->Close(); })` for each queue
//    so blocked waiters wake immediately (closing is idempotent).
//
// Batch transfer (the morsel dataflow path): PushBatch moves a whole vector
// of elements under one lock acquisition and PopBatch drains up to a
// maximum count under one lock acquisition. Both follow the token-aware
// close/cancel/deadline semantics above; capacity is still counted in
// elements, so back-pressure granularity is unchanged — a batch larger
// than the free space is admitted in segments, waiting in between. Waits
// are attributed once per batch call and the occupancy sample is taken
// once per successful batch push.

#ifndef LAKEFED_COMMON_BLOCKING_QUEUE_H_
#define LAKEFED_COMMON_BLOCKING_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/stopwatch.h"

namespace lakefed {

// Optional queue-wait observer (the federated executor attaches one per
// operator queue when metrics collection is on): reports every blocking
// wait with its duration plus a queue-depth occupancy sample per push.
// Implementations must be thread-safe; callbacks run outside the queue
// lock. With no observer attached the queue's code path is unchanged — no
// clock reads, no virtual calls.
class QueueWaitObserver {
 public:
  virtual ~QueueWaitObserver() = default;
  // A Push had to wait `wait_ms` for space. Reported even when the wait
  // ended in close, cancellation or deadline expiry rather than a
  // successful push, so teardown stalls are accounted too.
  virtual void OnPushWait(double wait_ms) = 0;
  // A Pop had to wait `wait_ms` for an item (same accounting contract).
  virtual void OnPopWait(double wait_ms) = 0;
  // Queue depth right after a successful push (occupancy sample).
  virtual void OnDepth(size_t depth) = 0;
};

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = 1024) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Counts every successful Push (used for operator statistics). Must be
  // set before producers start.
  void set_push_counter(std::shared_ptr<std::atomic<uint64_t>> counter) {
    push_counter_ = std::move(counter);
  }

  // Attaches the wait observer. Like the push counter, must be set before
  // any producer or consumer thread starts.
  void set_wait_observer(std::shared_ptr<QueueWaitObserver> observer) {
    observer_ = std::move(observer);
  }

  // The attached observer (null when none). Cooperative tasks use this to
  // report the block time their non-blocking Try* calls cannot measure, so
  // wait attribution is identical across the blocking and task dataflows.
  QueueWaitObserver* wait_observer() const { return observer_.get(); }

  // Readiness listeners (the cooperative-scheduler hook): a readable
  // listener fires when the queue transitions empty -> non-empty and when
  // it closes; a writable listener fires when occupancy drops from full
  // back below capacity and when it closes. Transitions are detected under
  // the queue lock but the callbacks run outside it, so a listener may
  // safely re-enter the queue. Spurious invocations are allowed and
  // expected — listeners must re-check state, not assume progress. Like
  // the observer, listeners must be registered before any producer or
  // consumer starts.
  void AddReadableListener(std::function<void()> fn) {
    readable_listeners_.push_back(std::move(fn));
  }
  void AddWritableListener(std::function<void()> fn) {
    writable_listeners_.push_back(std::move(fn));
  }

  // Blocks until there is room. Returns false (and drops the item) if the
  // queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool must_wait = !closed_ && items_.size() >= capacity_;
    double wait_ms = 0;
    if (must_wait && observer_ != nullptr) {
      Stopwatch wait;
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      wait_ms = wait.ElapsedMillis();
    } else if (must_wait) {
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) {
      lock.unlock();
      if (observer_ != nullptr && must_wait) observer_->OnPushWait(wait_ms);
      return false;
    }
    const bool was_empty = items_.empty();
    items_.push_back(std::move(item));
    const size_t depth = items_.size();
    lock.unlock();
    if (push_counter_ != nullptr) {
      push_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    if (observer_ != nullptr) {
      if (must_wait) observer_->OnPushWait(wait_ms);
      observer_->OnDepth(depth);
    }
    not_empty_.notify_one();
    if (was_empty) NotifyReadable();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns nullopt on exhaustion.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    const bool must_wait = !closed_ && items_.empty();
    double wait_ms = 0;
    if (must_wait && observer_ != nullptr) {
      Stopwatch wait;
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      wait_ms = wait.ElapsedMillis();
    } else if (must_wait) {
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    }
    if (items_.empty()) {  // closed and drained
      lock.unlock();
      if (observer_ != nullptr && must_wait) observer_->OnPopWait(wait_ms);
      return std::nullopt;
    }
    const bool was_full = items_.size() >= capacity_;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    if (observer_ != nullptr && must_wait) observer_->OnPopWait(wait_ms);
    not_full_.notify_one();
    if (was_full) NotifyWritable();
    return item;
  }

  // Token-aware Push: additionally gives up (returning false) once `token`
  // is cancelled or its deadline passes. The token check runs outside the
  // queue lock — a cancellation callback may close this very queue.
  bool Push(T item, const CancellationToken& token) {
    double wait_ms = 0;
    bool waited = false;
    for (;;) {
      if (token.IsCancelled()) {
        ReportPushWait(waited, wait_ms);
        return false;
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (closed_) {
        lock.unlock();
        ReportPushWait(waited, wait_ms);
        return false;
      }
      if (items_.size() < capacity_) {
        const bool was_empty = items_.empty();
        items_.push_back(std::move(item));
        const size_t depth = items_.size();
        lock.unlock();
        if (push_counter_ != nullptr) {
          push_counter_->fetch_add(1, std::memory_order_relaxed);
        }
        ReportPushWait(waited, wait_ms);
        if (observer_ != nullptr) observer_->OnDepth(depth);
        not_empty_.notify_one();
        if (was_empty) NotifyReadable();
        return true;
      }
      waited = true;
      bool ok;
      if (observer_ != nullptr) {
        Stopwatch wait;
        ok = WaitFor(not_full_, lock, token,
                     [&] { return closed_ || items_.size() < capacity_; });
        wait_ms += wait.ElapsedMillis();
      } else {
        ok = WaitFor(not_full_, lock, token,
                     [&] { return closed_ || items_.size() < capacity_; });
      }
      if (!ok) {
        // Deadline expired while the queue was still full: promote the
        // expiry to cancellation (outside the lock — the OnCancel callback
        // may close this very queue) and give up instead of spinning.
        lock.unlock();
        token.IsCancelled();
        ReportPushWait(waited, wait_ms);
        return false;
      }
    }
  }

  // Token-aware Pop: returns nullopt as soon as `token` is cancelled, even
  // if items remain (teardown must not drain), and wakes at the token's
  // deadline while blocked on an empty queue.
  std::optional<T> Pop(const CancellationToken& token) {
    double wait_ms = 0;
    bool waited = false;
    for (;;) {
      if (token.IsCancelled()) {
        ReportPopWait(waited, wait_ms);
        return std::nullopt;
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (!items_.empty()) {
        const bool was_full = items_.size() >= capacity_;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        ReportPopWait(waited, wait_ms);
        not_full_.notify_one();
        if (was_full) NotifyWritable();
        return item;
      }
      if (closed_) {
        lock.unlock();
        ReportPopWait(waited, wait_ms);
        return std::nullopt;
      }
      waited = true;
      bool ok;
      if (observer_ != nullptr) {
        Stopwatch wait;
        ok = WaitFor(not_empty_, lock, token,
                     [&] { return closed_ || !items_.empty(); });
        wait_ms += wait.ElapsedMillis();
      } else {
        ok = WaitFor(not_empty_, lock, token,
                     [&] { return closed_ || !items_.empty(); });
      }
      if (!ok) {
        // Deadline expired on an empty queue: promote and return promptly.
        lock.unlock();
        token.IsCancelled();
        ReportPopWait(waited, wait_ms);
        return std::nullopt;
      }
    }
  }

  // Batch push: moves every element of `*items` into the queue, waiting
  // for room as needed. Elements are admitted in order, possibly in
  // several segments when the batch exceeds the free space. Returns true
  // once the whole batch is in; returns false — dropping the not-yet
  // admitted remainder, like Push drops its item — as soon as the queue
  // is closed or the token is cancelled/expired. `*items` is cleared on
  // return either way. A default-constructed token (never cancelled, no
  // deadline) gives plain Push semantics.
  bool PushBatch(std::vector<T>* items,
                 const CancellationToken& token = CancellationToken()) {
    const size_t n = items->size();
    if (n == 0) return true;
    double wait_ms = 0;
    bool waited = false;
    size_t next = 0;  // elements [0, next) have been admitted
    for (;;) {
      if (token.IsCancelled()) break;
      std::unique_lock<std::mutex> lock(mu_);
      if (closed_) {
        lock.unlock();
        break;
      }
      if (items_.size() < capacity_) {
        const bool was_empty = items_.empty();
        const size_t take = std::min(capacity_ - items_.size(), n - next);
        for (size_t i = 0; i < take; ++i) {
          items_.push_back(std::move((*items)[next + i]));
        }
        next += take;
        const size_t depth = items_.size();
        lock.unlock();
        if (push_counter_ != nullptr) {
          push_counter_->fetch_add(take, std::memory_order_relaxed);
        }
        if (take > 1) {
          not_empty_.notify_all();
        } else {
          not_empty_.notify_one();
        }
        if (was_empty) NotifyReadable();
        if (next == n) {
          items->clear();
          ReportPushWait(waited, wait_ms);
          if (observer_ != nullptr) observer_->OnDepth(depth);
          return true;
        }
        continue;
      }
      waited = true;
      bool ok;
      if (observer_ != nullptr) {
        Stopwatch wait;
        ok = WaitFor(not_full_, lock, token,
                     [&] { return closed_ || items_.size() < capacity_; });
        wait_ms += wait.ElapsedMillis();
      } else {
        ok = WaitFor(not_full_, lock, token,
                     [&] { return closed_ || items_.size() < capacity_; });
      }
      if (!ok) {
        // Deadline expired while the queue was still full: promote the
        // expiry to cancellation (outside the lock) and give up.
        lock.unlock();
        token.IsCancelled();
        break;
      }
    }
    // Closed, cancelled or expired: elements [next, n) drop with the batch.
    items->clear();
    ReportPushWait(waited, wait_ms);
    return false;
  }

  // Batch pop: clears `*out`, then blocks until at least one element is
  // available (or the queue is exhausted / the token fires) and moves up
  // to `max_items` elements out under one lock acquisition. Returns the
  // number of elements delivered; 0 means exhaustion, cancellation or
  // deadline expiry — the same terminal conditions under which Pop
  // returns nullopt. Does NOT wait for a full batch: whatever is queued
  // when the wait ends is delivered, so batching never adds latency.
  size_t PopBatch(std::vector<T>* out, size_t max_items,
                  const CancellationToken& token = CancellationToken()) {
    out->clear();
    if (max_items == 0) return 0;
    double wait_ms = 0;
    bool waited = false;
    for (;;) {
      if (token.IsCancelled()) {
        ReportPopWait(waited, wait_ms);
        return 0;
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (!items_.empty()) {
        const bool was_full = items_.size() >= capacity_;
        const size_t take = std::min(max_items, items_.size());
        out->reserve(take);
        for (size_t i = 0; i < take; ++i) {
          out->push_back(std::move(items_.front()));
          items_.pop_front();
        }
        lock.unlock();
        ReportPopWait(waited, wait_ms);
        if (take > 1) {
          not_full_.notify_all();
        } else {
          not_full_.notify_one();
        }
        if (was_full) NotifyWritable();
        return take;
      }
      if (closed_) {
        lock.unlock();
        ReportPopWait(waited, wait_ms);
        return 0;
      }
      waited = true;
      bool ok;
      if (observer_ != nullptr) {
        Stopwatch wait;
        ok = WaitFor(not_empty_, lock, token,
                     [&] { return closed_ || !items_.empty(); });
        wait_ms += wait.ElapsedMillis();
      } else {
        ok = WaitFor(not_empty_, lock, token,
                     [&] { return closed_ || !items_.empty(); });
      }
      if (!ok) {
        // Deadline expired on an empty queue: promote and return promptly.
        lock.unlock();
        token.IsCancelled();
        ReportPopWait(waited, wait_ms);
        return 0;
      }
    }
  }

  // Non-blocking pop; nullopt if currently empty (regardless of closed state).
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    const bool was_full = items_.size() >= capacity_;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    if (was_full) NotifyWritable();
    return item;
  }

  // Non-blocking batch pop: clears `*out` and moves up to `max_items`
  // immediately-available elements into it. Returns the count (0 when the
  // queue is currently empty). `*exhausted`, when non-null, is set to true
  // iff the queue is closed with nothing left — the caller's signal to
  // finish rather than wait for a readable event.
  size_t TryPopBatch(std::vector<T>* out, size_t max_items,
                     bool* exhausted = nullptr) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() || max_items == 0) {
      if (exhausted != nullptr) *exhausted = closed_ && items_.empty();
      return 0;
    }
    if (exhausted != nullptr) *exhausted = false;
    const bool was_full = items_.size() >= capacity_;
    const size_t take = std::min(max_items, items_.size());
    out->reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    if (take > 1) {
      not_full_.notify_all();
    } else {
      not_full_.notify_one();
    }
    if (was_full) NotifyWritable();
    return take;
  }

  // Non-blocking batch push of (*items)[*pos ..): admits as many elements
  // as currently fit and advances `*pos` past them — position-based so a
  // partially shipped batch needs no front erase. Returns false iff the
  // queue is closed (the caller should drop the remainder); true otherwise,
  // with `*pos < items->size()` meaning "full for now, retry after a
  // writable event".
  bool TryPushBatch(std::vector<T>* items, size_t* pos) {
    const size_t n = items->size();
    if (*pos >= n) return true;
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return false;
    if (items_.size() >= capacity_) return true;
    const bool was_empty = items_.empty();
    const size_t take = std::min(capacity_ - items_.size(), n - *pos);
    for (size_t i = 0; i < take; ++i) {
      items_.push_back(std::move((*items)[*pos + i]));
    }
    *pos += take;
    const size_t depth = items_.size();
    lock.unlock();
    if (push_counter_ != nullptr) {
      push_counter_->fetch_add(take, std::memory_order_relaxed);
    }
    if (observer_ != nullptr) observer_->OnDepth(depth);
    if (take > 1) {
      not_empty_.notify_all();
    } else {
      not_empty_.notify_one();
    }
    if (was_empty) NotifyReadable();
    return true;
  }

  // Marks the queue closed. Producers are rejected from now on; consumers
  // drain what is left. Readiness listeners fire on the first close: a
  // closed queue is both "readable" (pops now terminate) and "writable"
  // (pushes now fail fast) for a cooperative task.
  void Close() {
    bool was_closed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      was_closed = closed_;
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    if (!was_closed) {
      NotifyReadable();
      NotifyWritable();
    }
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  // True once the queue is closed and all items have been consumed.
  bool exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && items_.empty();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  // Deferred wait reporting for the token-aware loops: waits accumulate
  // across loop iterations and are reported once per call, on every exit
  // path (success, close, cancellation, deadline).
  void ReportPushWait(bool waited, double wait_ms) {
    if (waited && observer_ != nullptr) observer_->OnPushWait(wait_ms);
  }
  void ReportPopWait(bool waited, double wait_ms) {
    if (waited && observer_ != nullptr) observer_->OnPopWait(wait_ms);
  }

  // Listener firing, always outside the queue lock. The vectors are frozen
  // before any producer/consumer starts (same contract as the observer), so
  // iterating without the lock is race-free.
  void NotifyReadable() {
    for (const std::function<void()>& fn : readable_listeners_) fn();
  }
  void NotifyWritable() {
    for (const std::function<void()>& fn : writable_listeners_) fn();
  }

  // One bounded wait: until the predicate holds, the token's deadline
  // passes, or (via the OnCancel queue-closing callback) a cancellation
  // closes the queue. Returns true when the predicate held at wake-up;
  // false means the deadline passed with the predicate still false — the
  // caller must treat that as cancellation and bail out, because looping
  // back would make every subsequent wait_until return immediately and
  // turn the wait into a hot spin.
  template <typename Pred>
  static bool WaitFor(std::condition_variable& cv,
                      std::unique_lock<std::mutex>& lock,
                      const CancellationToken& token, Pred pred) {
    auto deadline = token.deadline();
    if (deadline.has_value()) {
      return cv.wait_until(lock, *deadline, pred);
    }
    cv.wait(lock, pred);
    return true;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::shared_ptr<std::atomic<uint64_t>> push_counter_;
  std::shared_ptr<QueueWaitObserver> observer_;
  std::vector<std::function<void()>> readable_listeners_;
  std::vector<std::function<void()>> writable_listeners_;
};

}  // namespace lakefed

#endif  // LAKEFED_COMMON_BLOCKING_QUEUE_H_
