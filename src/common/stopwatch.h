// Stopwatch: monotonic wall-clock timing used for answer traces and benches.

#ifndef LAKEFED_COMMON_STOPWATCH_H_
#define LAKEFED_COMMON_STOPWATCH_H_

#include <chrono>

namespace lakefed {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lakefed

#endif  // LAKEFED_COMMON_STOPWATCH_H_
