#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace lakefed {

std::vector<std::string> SplitString(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

bool SqlLikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative matcher with backtracking over the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace lakefed
