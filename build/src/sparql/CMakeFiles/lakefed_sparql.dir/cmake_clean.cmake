file(REMOVE_RECURSE
  "CMakeFiles/lakefed_sparql.dir/aggregate.cc.o"
  "CMakeFiles/lakefed_sparql.dir/aggregate.cc.o.d"
  "CMakeFiles/lakefed_sparql.dir/ast.cc.o"
  "CMakeFiles/lakefed_sparql.dir/ast.cc.o.d"
  "CMakeFiles/lakefed_sparql.dir/eval.cc.o"
  "CMakeFiles/lakefed_sparql.dir/eval.cc.o.d"
  "CMakeFiles/lakefed_sparql.dir/filter_expr.cc.o"
  "CMakeFiles/lakefed_sparql.dir/filter_expr.cc.o.d"
  "CMakeFiles/lakefed_sparql.dir/lexer.cc.o"
  "CMakeFiles/lakefed_sparql.dir/lexer.cc.o.d"
  "CMakeFiles/lakefed_sparql.dir/parser.cc.o"
  "CMakeFiles/lakefed_sparql.dir/parser.cc.o.d"
  "liblakefed_sparql.a"
  "liblakefed_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefed_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
