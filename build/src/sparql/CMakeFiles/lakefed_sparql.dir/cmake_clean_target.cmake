file(REMOVE_RECURSE
  "liblakefed_sparql.a"
)
