# Empty compiler generated dependencies file for lakefed_sparql.
# This may be replaced when dependencies are built.
