file(REMOVE_RECURSE
  "liblakefed_net.a"
)
