# Empty compiler generated dependencies file for lakefed_net.
# This may be replaced when dependencies are built.
