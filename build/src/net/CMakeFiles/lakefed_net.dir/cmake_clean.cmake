file(REMOVE_RECURSE
  "CMakeFiles/lakefed_net.dir/network.cc.o"
  "CMakeFiles/lakefed_net.dir/network.cc.o.d"
  "liblakefed_net.a"
  "liblakefed_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefed_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
