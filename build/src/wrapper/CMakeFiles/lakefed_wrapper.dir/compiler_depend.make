# Empty compiler generated dependencies file for lakefed_wrapper.
# This may be replaced when dependencies are built.
