file(REMOVE_RECURSE
  "liblakefed_wrapper.a"
)
