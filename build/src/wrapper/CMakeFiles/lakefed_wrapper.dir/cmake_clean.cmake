file(REMOVE_RECURSE
  "CMakeFiles/lakefed_wrapper.dir/rdf_wrapper.cc.o"
  "CMakeFiles/lakefed_wrapper.dir/rdf_wrapper.cc.o.d"
  "CMakeFiles/lakefed_wrapper.dir/sql_wrapper.cc.o"
  "CMakeFiles/lakefed_wrapper.dir/sql_wrapper.cc.o.d"
  "liblakefed_wrapper.a"
  "liblakefed_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefed_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
