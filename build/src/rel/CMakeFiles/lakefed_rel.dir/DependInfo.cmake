
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/advisor.cc" "src/rel/CMakeFiles/lakefed_rel.dir/advisor.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/advisor.cc.o.d"
  "/root/repo/src/rel/btree.cc" "src/rel/CMakeFiles/lakefed_rel.dir/btree.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/btree.cc.o.d"
  "/root/repo/src/rel/catalog.cc" "src/rel/CMakeFiles/lakefed_rel.dir/catalog.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/catalog.cc.o.d"
  "/root/repo/src/rel/csv.cc" "src/rel/CMakeFiles/lakefed_rel.dir/csv.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/csv.cc.o.d"
  "/root/repo/src/rel/database.cc" "src/rel/CMakeFiles/lakefed_rel.dir/database.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/database.cc.o.d"
  "/root/repo/src/rel/executor.cc" "src/rel/CMakeFiles/lakefed_rel.dir/executor.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/executor.cc.o.d"
  "/root/repo/src/rel/expr.cc" "src/rel/CMakeFiles/lakefed_rel.dir/expr.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/expr.cc.o.d"
  "/root/repo/src/rel/planner.cc" "src/rel/CMakeFiles/lakefed_rel.dir/planner.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/planner.cc.o.d"
  "/root/repo/src/rel/schema.cc" "src/rel/CMakeFiles/lakefed_rel.dir/schema.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/schema.cc.o.d"
  "/root/repo/src/rel/sql_ast.cc" "src/rel/CMakeFiles/lakefed_rel.dir/sql_ast.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/sql_ast.cc.o.d"
  "/root/repo/src/rel/sql_lexer.cc" "src/rel/CMakeFiles/lakefed_rel.dir/sql_lexer.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/sql_lexer.cc.o.d"
  "/root/repo/src/rel/sql_parser.cc" "src/rel/CMakeFiles/lakefed_rel.dir/sql_parser.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/sql_parser.cc.o.d"
  "/root/repo/src/rel/table.cc" "src/rel/CMakeFiles/lakefed_rel.dir/table.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/table.cc.o.d"
  "/root/repo/src/rel/value.cc" "src/rel/CMakeFiles/lakefed_rel.dir/value.cc.o" "gcc" "src/rel/CMakeFiles/lakefed_rel.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakefed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
