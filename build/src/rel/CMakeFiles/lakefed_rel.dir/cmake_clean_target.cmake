file(REMOVE_RECURSE
  "liblakefed_rel.a"
)
