file(REMOVE_RECURSE
  "CMakeFiles/lakefed_rel.dir/advisor.cc.o"
  "CMakeFiles/lakefed_rel.dir/advisor.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/btree.cc.o"
  "CMakeFiles/lakefed_rel.dir/btree.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/catalog.cc.o"
  "CMakeFiles/lakefed_rel.dir/catalog.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/csv.cc.o"
  "CMakeFiles/lakefed_rel.dir/csv.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/database.cc.o"
  "CMakeFiles/lakefed_rel.dir/database.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/executor.cc.o"
  "CMakeFiles/lakefed_rel.dir/executor.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/expr.cc.o"
  "CMakeFiles/lakefed_rel.dir/expr.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/planner.cc.o"
  "CMakeFiles/lakefed_rel.dir/planner.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/schema.cc.o"
  "CMakeFiles/lakefed_rel.dir/schema.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/sql_ast.cc.o"
  "CMakeFiles/lakefed_rel.dir/sql_ast.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/sql_lexer.cc.o"
  "CMakeFiles/lakefed_rel.dir/sql_lexer.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/sql_parser.cc.o"
  "CMakeFiles/lakefed_rel.dir/sql_parser.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/table.cc.o"
  "CMakeFiles/lakefed_rel.dir/table.cc.o.d"
  "CMakeFiles/lakefed_rel.dir/value.cc.o"
  "CMakeFiles/lakefed_rel.dir/value.cc.o.d"
  "liblakefed_rel.a"
  "liblakefed_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefed_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
