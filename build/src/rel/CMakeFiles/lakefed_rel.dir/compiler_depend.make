# Empty compiler generated dependencies file for lakefed_rel.
# This may be replaced when dependencies are built.
