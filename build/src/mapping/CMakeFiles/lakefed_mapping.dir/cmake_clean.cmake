file(REMOVE_RECURSE
  "CMakeFiles/lakefed_mapping.dir/materialize.cc.o"
  "CMakeFiles/lakefed_mapping.dir/materialize.cc.o.d"
  "CMakeFiles/lakefed_mapping.dir/rdf_mt.cc.o"
  "CMakeFiles/lakefed_mapping.dir/rdf_mt.cc.o.d"
  "CMakeFiles/lakefed_mapping.dir/relational_mapping.cc.o"
  "CMakeFiles/lakefed_mapping.dir/relational_mapping.cc.o.d"
  "liblakefed_mapping.a"
  "liblakefed_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefed_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
