# Empty compiler generated dependencies file for lakefed_mapping.
# This may be replaced when dependencies are built.
