
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/materialize.cc" "src/mapping/CMakeFiles/lakefed_mapping.dir/materialize.cc.o" "gcc" "src/mapping/CMakeFiles/lakefed_mapping.dir/materialize.cc.o.d"
  "/root/repo/src/mapping/rdf_mt.cc" "src/mapping/CMakeFiles/lakefed_mapping.dir/rdf_mt.cc.o" "gcc" "src/mapping/CMakeFiles/lakefed_mapping.dir/rdf_mt.cc.o.d"
  "/root/repo/src/mapping/relational_mapping.cc" "src/mapping/CMakeFiles/lakefed_mapping.dir/relational_mapping.cc.o" "gcc" "src/mapping/CMakeFiles/lakefed_mapping.dir/relational_mapping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakefed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/lakefed_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/lakefed_rel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
