file(REMOVE_RECURSE
  "liblakefed_mapping.a"
)
