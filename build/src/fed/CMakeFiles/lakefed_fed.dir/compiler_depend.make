# Empty compiler generated dependencies file for lakefed_fed.
# This may be replaced when dependencies are built.
