file(REMOVE_RECURSE
  "CMakeFiles/lakefed_fed.dir/decomposer.cc.o"
  "CMakeFiles/lakefed_fed.dir/decomposer.cc.o.d"
  "CMakeFiles/lakefed_fed.dir/engine.cc.o"
  "CMakeFiles/lakefed_fed.dir/engine.cc.o.d"
  "CMakeFiles/lakefed_fed.dir/executor.cc.o"
  "CMakeFiles/lakefed_fed.dir/executor.cc.o.d"
  "CMakeFiles/lakefed_fed.dir/options.cc.o"
  "CMakeFiles/lakefed_fed.dir/options.cc.o.d"
  "CMakeFiles/lakefed_fed.dir/plan.cc.o"
  "CMakeFiles/lakefed_fed.dir/plan.cc.o.d"
  "CMakeFiles/lakefed_fed.dir/planner.cc.o"
  "CMakeFiles/lakefed_fed.dir/planner.cc.o.d"
  "CMakeFiles/lakefed_fed.dir/subquery.cc.o"
  "CMakeFiles/lakefed_fed.dir/subquery.cc.o.d"
  "CMakeFiles/lakefed_fed.dir/trace.cc.o"
  "CMakeFiles/lakefed_fed.dir/trace.cc.o.d"
  "liblakefed_fed.a"
  "liblakefed_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefed_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
