file(REMOVE_RECURSE
  "liblakefed_fed.a"
)
