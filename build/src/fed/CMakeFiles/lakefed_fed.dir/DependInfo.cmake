
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fed/decomposer.cc" "src/fed/CMakeFiles/lakefed_fed.dir/decomposer.cc.o" "gcc" "src/fed/CMakeFiles/lakefed_fed.dir/decomposer.cc.o.d"
  "/root/repo/src/fed/engine.cc" "src/fed/CMakeFiles/lakefed_fed.dir/engine.cc.o" "gcc" "src/fed/CMakeFiles/lakefed_fed.dir/engine.cc.o.d"
  "/root/repo/src/fed/executor.cc" "src/fed/CMakeFiles/lakefed_fed.dir/executor.cc.o" "gcc" "src/fed/CMakeFiles/lakefed_fed.dir/executor.cc.o.d"
  "/root/repo/src/fed/options.cc" "src/fed/CMakeFiles/lakefed_fed.dir/options.cc.o" "gcc" "src/fed/CMakeFiles/lakefed_fed.dir/options.cc.o.d"
  "/root/repo/src/fed/plan.cc" "src/fed/CMakeFiles/lakefed_fed.dir/plan.cc.o" "gcc" "src/fed/CMakeFiles/lakefed_fed.dir/plan.cc.o.d"
  "/root/repo/src/fed/planner.cc" "src/fed/CMakeFiles/lakefed_fed.dir/planner.cc.o" "gcc" "src/fed/CMakeFiles/lakefed_fed.dir/planner.cc.o.d"
  "/root/repo/src/fed/subquery.cc" "src/fed/CMakeFiles/lakefed_fed.dir/subquery.cc.o" "gcc" "src/fed/CMakeFiles/lakefed_fed.dir/subquery.cc.o.d"
  "/root/repo/src/fed/trace.cc" "src/fed/CMakeFiles/lakefed_fed.dir/trace.cc.o" "gcc" "src/fed/CMakeFiles/lakefed_fed.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakefed_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lakefed_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/lakefed_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/lakefed_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/lakefed_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/lakefed_rel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
