file(REMOVE_RECURSE
  "liblakefed_common.a"
)
