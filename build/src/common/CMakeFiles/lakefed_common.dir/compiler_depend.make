# Empty compiler generated dependencies file for lakefed_common.
# This may be replaced when dependencies are built.
