file(REMOVE_RECURSE
  "CMakeFiles/lakefed_common.dir/logging.cc.o"
  "CMakeFiles/lakefed_common.dir/logging.cc.o.d"
  "CMakeFiles/lakefed_common.dir/rng.cc.o"
  "CMakeFiles/lakefed_common.dir/rng.cc.o.d"
  "CMakeFiles/lakefed_common.dir/status.cc.o"
  "CMakeFiles/lakefed_common.dir/status.cc.o.d"
  "CMakeFiles/lakefed_common.dir/string_util.cc.o"
  "CMakeFiles/lakefed_common.dir/string_util.cc.o.d"
  "liblakefed_common.a"
  "liblakefed_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefed_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
