file(REMOVE_RECURSE
  "CMakeFiles/lakefed_rdf.dir/bgp.cc.o"
  "CMakeFiles/lakefed_rdf.dir/bgp.cc.o.d"
  "CMakeFiles/lakefed_rdf.dir/dictionary.cc.o"
  "CMakeFiles/lakefed_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/lakefed_rdf.dir/ntriples.cc.o"
  "CMakeFiles/lakefed_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/lakefed_rdf.dir/term.cc.o"
  "CMakeFiles/lakefed_rdf.dir/term.cc.o.d"
  "CMakeFiles/lakefed_rdf.dir/triple_store.cc.o"
  "CMakeFiles/lakefed_rdf.dir/triple_store.cc.o.d"
  "liblakefed_rdf.a"
  "liblakefed_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefed_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
