file(REMOVE_RECURSE
  "liblakefed_rdf.a"
)
