# Empty dependencies file for lakefed_rdf.
# This may be replaced when dependencies are built.
