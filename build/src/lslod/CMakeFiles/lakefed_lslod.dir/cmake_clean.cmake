file(REMOVE_RECURSE
  "CMakeFiles/lakefed_lslod.dir/export.cc.o"
  "CMakeFiles/lakefed_lslod.dir/export.cc.o.d"
  "CMakeFiles/lakefed_lslod.dir/generator.cc.o"
  "CMakeFiles/lakefed_lslod.dir/generator.cc.o.d"
  "CMakeFiles/lakefed_lslod.dir/queries.cc.o"
  "CMakeFiles/lakefed_lslod.dir/queries.cc.o.d"
  "liblakefed_lslod.a"
  "liblakefed_lslod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefed_lslod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
