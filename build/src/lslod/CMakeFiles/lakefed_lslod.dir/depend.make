# Empty dependencies file for lakefed_lslod.
# This may be replaced when dependencies are built.
