file(REMOVE_RECURSE
  "liblakefed_lslod.a"
)
