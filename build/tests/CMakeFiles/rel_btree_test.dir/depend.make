# Empty dependencies file for rel_btree_test.
# This may be replaced when dependencies are built.
