file(REMOVE_RECURSE
  "CMakeFiles/rel_btree_test.dir/rel_btree_test.cc.o"
  "CMakeFiles/rel_btree_test.dir/rel_btree_test.cc.o.d"
  "rel_btree_test"
  "rel_btree_test.pdb"
  "rel_btree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
