# Empty compiler generated dependencies file for rel_aggregate_test.
# This may be replaced when dependencies are built.
