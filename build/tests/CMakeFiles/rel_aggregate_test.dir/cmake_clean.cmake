file(REMOVE_RECURSE
  "CMakeFiles/rel_aggregate_test.dir/rel_aggregate_test.cc.o"
  "CMakeFiles/rel_aggregate_test.dir/rel_aggregate_test.cc.o.d"
  "rel_aggregate_test"
  "rel_aggregate_test.pdb"
  "rel_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
