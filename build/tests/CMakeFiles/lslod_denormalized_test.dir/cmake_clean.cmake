file(REMOVE_RECURSE
  "CMakeFiles/lslod_denormalized_test.dir/lslod_denormalized_test.cc.o"
  "CMakeFiles/lslod_denormalized_test.dir/lslod_denormalized_test.cc.o.d"
  "lslod_denormalized_test"
  "lslod_denormalized_test.pdb"
  "lslod_denormalized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslod_denormalized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
