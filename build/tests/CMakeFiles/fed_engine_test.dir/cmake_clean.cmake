file(REMOVE_RECURSE
  "CMakeFiles/fed_engine_test.dir/fed_engine_test.cc.o"
  "CMakeFiles/fed_engine_test.dir/fed_engine_test.cc.o.d"
  "fed_engine_test"
  "fed_engine_test.pdb"
  "fed_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
