# Empty compiler generated dependencies file for fed_engine_test.
# This may be replaced when dependencies are built.
