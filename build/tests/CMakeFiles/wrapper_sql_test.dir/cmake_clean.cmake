file(REMOVE_RECURSE
  "CMakeFiles/wrapper_sql_test.dir/wrapper_sql_test.cc.o"
  "CMakeFiles/wrapper_sql_test.dir/wrapper_sql_test.cc.o.d"
  "wrapper_sql_test"
  "wrapper_sql_test.pdb"
  "wrapper_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrapper_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
