# Empty dependencies file for wrapper_sql_test.
# This may be replaced when dependencies are built.
