# Empty dependencies file for rel_table_test.
# This may be replaced when dependencies are built.
