file(REMOVE_RECURSE
  "CMakeFiles/rel_table_test.dir/rel_table_test.cc.o"
  "CMakeFiles/rel_table_test.dir/rel_table_test.cc.o.d"
  "rel_table_test"
  "rel_table_test.pdb"
  "rel_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
