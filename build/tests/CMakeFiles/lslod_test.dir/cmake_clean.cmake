file(REMOVE_RECURSE
  "CMakeFiles/lslod_test.dir/lslod_test.cc.o"
  "CMakeFiles/lslod_test.dir/lslod_test.cc.o.d"
  "lslod_test"
  "lslod_test.pdb"
  "lslod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
