# Empty compiler generated dependencies file for lslod_test.
# This may be replaced when dependencies are built.
