file(REMOVE_RECURSE
  "CMakeFiles/fed_decomposer_test.dir/fed_decomposer_test.cc.o"
  "CMakeFiles/fed_decomposer_test.dir/fed_decomposer_test.cc.o.d"
  "fed_decomposer_test"
  "fed_decomposer_test.pdb"
  "fed_decomposer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_decomposer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
