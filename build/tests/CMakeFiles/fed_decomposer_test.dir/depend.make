# Empty dependencies file for fed_decomposer_test.
# This may be replaced when dependencies are built.
