file(REMOVE_RECURSE
  "CMakeFiles/wrapper_rdf_test.dir/wrapper_rdf_test.cc.o"
  "CMakeFiles/wrapper_rdf_test.dir/wrapper_rdf_test.cc.o.d"
  "wrapper_rdf_test"
  "wrapper_rdf_test.pdb"
  "wrapper_rdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrapper_rdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
