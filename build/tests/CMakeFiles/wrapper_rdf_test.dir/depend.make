# Empty dependencies file for wrapper_rdf_test.
# This may be replaced when dependencies are built.
