# Empty compiler generated dependencies file for rdf_triple_store_test.
# This may be replaced when dependencies are built.
