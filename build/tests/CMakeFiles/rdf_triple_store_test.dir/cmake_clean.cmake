file(REMOVE_RECURSE
  "CMakeFiles/rdf_triple_store_test.dir/rdf_triple_store_test.cc.o"
  "CMakeFiles/rdf_triple_store_test.dir/rdf_triple_store_test.cc.o.d"
  "rdf_triple_store_test"
  "rdf_triple_store_test.pdb"
  "rdf_triple_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_triple_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
