file(REMOVE_RECURSE
  "CMakeFiles/rel_expr_test.dir/rel_expr_test.cc.o"
  "CMakeFiles/rel_expr_test.dir/rel_expr_test.cc.o.d"
  "rel_expr_test"
  "rel_expr_test.pdb"
  "rel_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
