file(REMOVE_RECURSE
  "CMakeFiles/rel_csv_test.dir/rel_csv_test.cc.o"
  "CMakeFiles/rel_csv_test.dir/rel_csv_test.cc.o.d"
  "rel_csv_test"
  "rel_csv_test.pdb"
  "rel_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
