file(REMOVE_RECURSE
  "CMakeFiles/fed_trace_test.dir/fed_trace_test.cc.o"
  "CMakeFiles/fed_trace_test.dir/fed_trace_test.cc.o.d"
  "fed_trace_test"
  "fed_trace_test.pdb"
  "fed_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
