# Empty dependencies file for fed_trace_test.
# This may be replaced when dependencies are built.
