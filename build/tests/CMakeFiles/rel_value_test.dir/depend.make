# Empty dependencies file for rel_value_test.
# This may be replaced when dependencies are built.
