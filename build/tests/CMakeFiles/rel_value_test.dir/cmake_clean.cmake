file(REMOVE_RECURSE
  "CMakeFiles/rel_value_test.dir/rel_value_test.cc.o"
  "CMakeFiles/rel_value_test.dir/rel_value_test.cc.o.d"
  "rel_value_test"
  "rel_value_test.pdb"
  "rel_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
