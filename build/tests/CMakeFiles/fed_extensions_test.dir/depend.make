# Empty dependencies file for fed_extensions_test.
# This may be replaced when dependencies are built.
