file(REMOVE_RECURSE
  "CMakeFiles/fed_extensions_test.dir/fed_extensions_test.cc.o"
  "CMakeFiles/fed_extensions_test.dir/fed_extensions_test.cc.o.d"
  "fed_extensions_test"
  "fed_extensions_test.pdb"
  "fed_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
