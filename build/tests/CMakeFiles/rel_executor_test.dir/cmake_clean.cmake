file(REMOVE_RECURSE
  "CMakeFiles/rel_executor_test.dir/rel_executor_test.cc.o"
  "CMakeFiles/rel_executor_test.dir/rel_executor_test.cc.o.d"
  "rel_executor_test"
  "rel_executor_test.pdb"
  "rel_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
