# Empty dependencies file for sparql_filter_test.
# This may be replaced when dependencies are built.
