file(REMOVE_RECURSE
  "CMakeFiles/sparql_filter_test.dir/sparql_filter_test.cc.o"
  "CMakeFiles/sparql_filter_test.dir/sparql_filter_test.cc.o.d"
  "sparql_filter_test"
  "sparql_filter_test.pdb"
  "sparql_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
