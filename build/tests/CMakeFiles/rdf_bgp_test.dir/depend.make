# Empty dependencies file for rdf_bgp_test.
# This may be replaced when dependencies are built.
