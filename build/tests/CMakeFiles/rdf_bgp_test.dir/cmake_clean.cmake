file(REMOVE_RECURSE
  "CMakeFiles/rdf_bgp_test.dir/rdf_bgp_test.cc.o"
  "CMakeFiles/rdf_bgp_test.dir/rdf_bgp_test.cc.o.d"
  "rdf_bgp_test"
  "rdf_bgp_test.pdb"
  "rdf_bgp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_bgp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
