file(REMOVE_RECURSE
  "CMakeFiles/rel_advisor_test.dir/rel_advisor_test.cc.o"
  "CMakeFiles/rel_advisor_test.dir/rel_advisor_test.cc.o.d"
  "rel_advisor_test"
  "rel_advisor_test.pdb"
  "rel_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
