# Empty compiler generated dependencies file for rel_advisor_test.
# This may be replaced when dependencies are built.
