file(REMOVE_RECURSE
  "CMakeFiles/fed_fuzz_test.dir/fed_fuzz_test.cc.o"
  "CMakeFiles/fed_fuzz_test.dir/fed_fuzz_test.cc.o.d"
  "fed_fuzz_test"
  "fed_fuzz_test.pdb"
  "fed_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
