# Empty dependencies file for fed_fuzz_test.
# This may be replaced when dependencies are built.
