file(REMOVE_RECURSE
  "CMakeFiles/rdf_term_test.dir/rdf_term_test.cc.o"
  "CMakeFiles/rdf_term_test.dir/rdf_term_test.cc.o.d"
  "rdf_term_test"
  "rdf_term_test.pdb"
  "rdf_term_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_term_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
