# Empty dependencies file for rdf_term_test.
# This may be replaced when dependencies are built.
