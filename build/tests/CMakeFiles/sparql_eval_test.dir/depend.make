# Empty dependencies file for sparql_eval_test.
# This may be replaced when dependencies are built.
