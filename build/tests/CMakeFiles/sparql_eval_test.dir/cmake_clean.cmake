file(REMOVE_RECURSE
  "CMakeFiles/sparql_eval_test.dir/sparql_eval_test.cc.o"
  "CMakeFiles/sparql_eval_test.dir/sparql_eval_test.cc.o.d"
  "sparql_eval_test"
  "sparql_eval_test.pdb"
  "sparql_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
