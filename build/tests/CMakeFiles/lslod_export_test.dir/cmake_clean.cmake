file(REMOVE_RECURSE
  "CMakeFiles/lslod_export_test.dir/lslod_export_test.cc.o"
  "CMakeFiles/lslod_export_test.dir/lslod_export_test.cc.o.d"
  "lslod_export_test"
  "lslod_export_test.pdb"
  "lslod_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lslod_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
