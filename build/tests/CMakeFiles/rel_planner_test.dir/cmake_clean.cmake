file(REMOVE_RECURSE
  "CMakeFiles/rel_planner_test.dir/rel_planner_test.cc.o"
  "CMakeFiles/rel_planner_test.dir/rel_planner_test.cc.o.d"
  "rel_planner_test"
  "rel_planner_test.pdb"
  "rel_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
