# Empty dependencies file for rel_planner_test.
# This may be replaced when dependencies are built.
