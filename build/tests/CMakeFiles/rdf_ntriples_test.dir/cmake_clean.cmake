file(REMOVE_RECURSE
  "CMakeFiles/rdf_ntriples_test.dir/rdf_ntriples_test.cc.o"
  "CMakeFiles/rdf_ntriples_test.dir/rdf_ntriples_test.cc.o.d"
  "rdf_ntriples_test"
  "rdf_ntriples_test.pdb"
  "rdf_ntriples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_ntriples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
