# Empty dependencies file for rdf_ntriples_test.
# This may be replaced when dependencies are built.
