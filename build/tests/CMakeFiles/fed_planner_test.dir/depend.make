# Empty dependencies file for fed_planner_test.
# This may be replaced when dependencies are built.
