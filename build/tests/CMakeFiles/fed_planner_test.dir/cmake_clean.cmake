file(REMOVE_RECURSE
  "CMakeFiles/fed_planner_test.dir/fed_planner_test.cc.o"
  "CMakeFiles/fed_planner_test.dir/fed_planner_test.cc.o.d"
  "fed_planner_test"
  "fed_planner_test.pdb"
  "fed_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
