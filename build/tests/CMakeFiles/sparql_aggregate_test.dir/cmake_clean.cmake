file(REMOVE_RECURSE
  "CMakeFiles/sparql_aggregate_test.dir/sparql_aggregate_test.cc.o"
  "CMakeFiles/sparql_aggregate_test.dir/sparql_aggregate_test.cc.o.d"
  "sparql_aggregate_test"
  "sparql_aggregate_test.pdb"
  "sparql_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
