# Empty dependencies file for sparql_aggregate_test.
# This may be replaced when dependencies are built.
