file(REMOVE_RECURSE
  "CMakeFiles/rel_fuzz_test.dir/rel_fuzz_test.cc.o"
  "CMakeFiles/rel_fuzz_test.dir/rel_fuzz_test.cc.o.d"
  "rel_fuzz_test"
  "rel_fuzz_test.pdb"
  "rel_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
