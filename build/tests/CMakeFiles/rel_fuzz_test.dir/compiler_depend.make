# Empty compiler generated dependencies file for rel_fuzz_test.
# This may be replaced when dependencies are built.
