# Empty dependencies file for rel_sql_parser_test.
# This may be replaced when dependencies are built.
