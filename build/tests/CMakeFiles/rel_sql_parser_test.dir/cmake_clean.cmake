file(REMOVE_RECURSE
  "CMakeFiles/rel_sql_parser_test.dir/rel_sql_parser_test.cc.o"
  "CMakeFiles/rel_sql_parser_test.dir/rel_sql_parser_test.cc.o.d"
  "rel_sql_parser_test"
  "rel_sql_parser_test.pdb"
  "rel_sql_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_sql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
