# Empty compiler generated dependencies file for sparql_optional_orderby_test.
# This may be replaced when dependencies are built.
