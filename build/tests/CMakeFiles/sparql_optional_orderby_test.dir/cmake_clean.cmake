file(REMOVE_RECURSE
  "CMakeFiles/sparql_optional_orderby_test.dir/sparql_optional_orderby_test.cc.o"
  "CMakeFiles/sparql_optional_orderby_test.dir/sparql_optional_orderby_test.cc.o.d"
  "sparql_optional_orderby_test"
  "sparql_optional_orderby_test.pdb"
  "sparql_optional_orderby_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_optional_orderby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
