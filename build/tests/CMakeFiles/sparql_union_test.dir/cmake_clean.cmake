file(REMOVE_RECURSE
  "CMakeFiles/sparql_union_test.dir/sparql_union_test.cc.o"
  "CMakeFiles/sparql_union_test.dir/sparql_union_test.cc.o.d"
  "sparql_union_test"
  "sparql_union_test.pdb"
  "sparql_union_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_union_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
