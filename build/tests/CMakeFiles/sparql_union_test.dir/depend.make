# Empty dependencies file for sparql_union_test.
# This may be replaced when dependencies are built.
