# Empty compiler generated dependencies file for fed_robustness_test.
# This may be replaced when dependencies are built.
