file(REMOVE_RECURSE
  "CMakeFiles/fed_robustness_test.dir/fed_robustness_test.cc.o"
  "CMakeFiles/fed_robustness_test.dir/fed_robustness_test.cc.o.d"
  "fed_robustness_test"
  "fed_robustness_test.pdb"
  "fed_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fed_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
