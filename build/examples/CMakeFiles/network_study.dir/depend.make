# Empty dependencies file for network_study.
# This may be replaced when dependencies are built.
