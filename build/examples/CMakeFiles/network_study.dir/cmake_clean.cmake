file(REMOVE_RECURSE
  "CMakeFiles/network_study.dir/network_study.cpp.o"
  "CMakeFiles/network_study.dir/network_study.cpp.o.d"
  "network_study"
  "network_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
