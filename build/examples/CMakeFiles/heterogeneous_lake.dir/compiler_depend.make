# Empty compiler generated dependencies file for heterogeneous_lake.
# This may be replaced when dependencies are built.
