file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_lake.dir/heterogeneous_lake.cpp.o"
  "CMakeFiles/heterogeneous_lake.dir/heterogeneous_lake.cpp.o.d"
  "heterogeneous_lake"
  "heterogeneous_lake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_lake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
