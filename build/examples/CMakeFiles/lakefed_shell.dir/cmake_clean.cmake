file(REMOVE_RECURSE
  "CMakeFiles/lakefed_shell.dir/lakefed_shell.cpp.o"
  "CMakeFiles/lakefed_shell.dir/lakefed_shell.cpp.o.d"
  "lakefed_shell"
  "lakefed_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakefed_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
