# Empty compiler generated dependencies file for lakefed_shell.
# This may be replaced when dependencies are built.
