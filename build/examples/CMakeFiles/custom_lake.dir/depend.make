# Empty dependencies file for custom_lake.
# This may be replaced when dependencies are built.
