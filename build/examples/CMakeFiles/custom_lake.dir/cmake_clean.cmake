file(REMOVE_RECURSE
  "CMakeFiles/custom_lake.dir/custom_lake.cpp.o"
  "CMakeFiles/custom_lake.dir/custom_lake.cpp.o.d"
  "custom_lake"
  "custom_lake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_lake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
