# Empty compiler generated dependencies file for bench_h2_filter_placement.
# This may be replaced when dependencies are built.
