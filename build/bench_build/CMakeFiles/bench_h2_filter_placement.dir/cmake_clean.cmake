file(REMOVE_RECURSE
  "../bench/bench_h2_filter_placement"
  "../bench/bench_h2_filter_placement.pdb"
  "CMakeFiles/bench_h2_filter_placement.dir/bench_h2_filter_placement.cc.o"
  "CMakeFiles/bench_h2_filter_placement.dir/bench_h2_filter_placement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_h2_filter_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
