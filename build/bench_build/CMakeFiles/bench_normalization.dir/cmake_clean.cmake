file(REMOVE_RECURSE
  "../bench/bench_normalization"
  "../bench/bench_normalization.pdb"
  "CMakeFiles/bench_normalization.dir/bench_normalization.cc.o"
  "CMakeFiles/bench_normalization.dir/bench_normalization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
