file(REMOVE_RECURSE
  "../bench/micro_btree"
  "../bench/micro_btree.pdb"
  "CMakeFiles/micro_btree.dir/micro_btree.cc.o"
  "CMakeFiles/micro_btree.dir/micro_btree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
