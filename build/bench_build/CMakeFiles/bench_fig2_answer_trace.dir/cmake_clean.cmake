file(REMOVE_RECURSE
  "../bench/bench_fig2_answer_trace"
  "../bench/bench_fig2_answer_trace.pdb"
  "CMakeFiles/bench_fig2_answer_trace.dir/bench_fig2_answer_trace.cc.o"
  "CMakeFiles/bench_fig2_answer_trace.dir/bench_fig2_answer_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_answer_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
