# Empty dependencies file for bench_q2_join_pushdown.
# This may be replaced when dependencies are built.
