
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_q2_join_pushdown.cc" "bench_build/CMakeFiles/bench_q2_join_pushdown.dir/bench_q2_join_pushdown.cc.o" "gcc" "bench_build/CMakeFiles/bench_q2_join_pushdown.dir/bench_q2_join_pushdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lslod/CMakeFiles/lakefed_lslod.dir/DependInfo.cmake"
  "/root/repo/build/src/wrapper/CMakeFiles/lakefed_wrapper.dir/DependInfo.cmake"
  "/root/repo/build/src/fed/CMakeFiles/lakefed_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lakefed_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/lakefed_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/lakefed_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/lakefed_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/lakefed_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lakefed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
