file(REMOVE_RECURSE
  "../bench/bench_q2_join_pushdown"
  "../bench/bench_q2_join_pushdown.pdb"
  "CMakeFiles/bench_q2_join_pushdown.dir/bench_q2_join_pushdown.cc.o"
  "CMakeFiles/bench_q2_join_pushdown.dir/bench_q2_join_pushdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q2_join_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
