# Empty dependencies file for bench_grid_exec_time.
# This may be replaced when dependencies are built.
