file(REMOVE_RECURSE
  "../bench/micro_rdf_sparql"
  "../bench/micro_rdf_sparql.pdb"
  "CMakeFiles/micro_rdf_sparql.dir/micro_rdf_sparql.cc.o"
  "CMakeFiles/micro_rdf_sparql.dir/micro_rdf_sparql.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rdf_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
