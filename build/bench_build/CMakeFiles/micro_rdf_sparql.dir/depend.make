# Empty dependencies file for micro_rdf_sparql.
# This may be replaced when dependencies are built.
