file(REMOVE_RECURSE
  "../bench/micro_rel_query"
  "../bench/micro_rel_query.pdb"
  "CMakeFiles/micro_rel_query.dir/micro_rel_query.cc.o"
  "CMakeFiles/micro_rel_query.dir/micro_rel_query.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rel_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
