# Empty compiler generated dependencies file for micro_rel_query.
# This may be replaced when dependencies are built.
