file(REMOVE_RECURSE
  "../bench/bench_join_operators"
  "../bench/bench_join_operators.pdb"
  "CMakeFiles/bench_join_operators.dir/bench_join_operators.cc.o"
  "CMakeFiles/bench_join_operators.dir/bench_join_operators.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
