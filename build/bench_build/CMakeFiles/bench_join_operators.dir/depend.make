# Empty dependencies file for bench_join_operators.
# This may be replaced when dependencies are built.
