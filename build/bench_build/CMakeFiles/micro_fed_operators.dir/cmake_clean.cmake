file(REMOVE_RECURSE
  "../bench/micro_fed_operators"
  "../bench/micro_fed_operators.pdb"
  "CMakeFiles/micro_fed_operators.dir/micro_fed_operators.cc.o"
  "CMakeFiles/micro_fed_operators.dir/micro_fed_operators.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fed_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
