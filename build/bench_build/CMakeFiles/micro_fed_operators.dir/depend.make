# Empty dependencies file for micro_fed_operators.
# This may be replaced when dependencies are built.
