# Empty compiler generated dependencies file for bench_fig1_plans.
# This may be replaced when dependencies are built.
