// Building your own Semantic Data Lake from scratch with the public API:
// create a relational database, define its 3NF schema and mappings, load an
// RDF source, register both with the mediator, query federatedly.
//
//   $ ./examples/custom_lake

#include <cstdio>

#include "fed/engine.h"
#include "mapping/relational_mapping.h"
#include "rdf/ntriples.h"
#include "rel/database.h"
#include "wrapper/rdf_wrapper.h"
#include "wrapper/sql_wrapper.h"

using namespace lakefed;
using rel::ColumnType;
using rel::Schema;
using rel::Value;

int main() {
  // --- 1. A relational source: a tiny product catalog ------------------
  auto db = std::make_unique<rel::Database>("shopdb");
  auto product = db->catalog().CreateTable(
      "product",
      Schema({{"id", ColumnType::kInt64, false},
              {"name", ColumnType::kString, false},
              {"price", ColumnType::kDouble, false}}),
      "id");
  if (!product.ok()) return 1;
  const char* names[] = {"laptop", "phone", "tablet", "watch", "camera"};
  double prices[] = {1200, 800, 500, 250, 950};
  for (int i = 0; i < 5; ++i) {
    if (!(*product)
             ->Insert({Value(int64_t{i}), Value(names[i]), Value(prices[i])})
             .ok()) {
      return 1;
    }
  }
  // Physical design: index the attribute our workload filters on.
  if (!(*product)->CreateIndex("price").ok()) return 1;

  // Mappings: how the rows become RDF.
  mapping::SourceMapping sm;
  sm.source_id = "shopdb";
  mapping::ClassMapping cm;
  cm.class_iri = "http://shop.example.org/vocab#Product";
  cm.base_table = "product";
  cm.pk_column = "id";
  cm.subject_template = mapping::IriTemplate("http://shop.example.org/p/{}");
  mapping::PredicateMapping name;
  name.predicate = "http://shop.example.org/vocab#name";
  name.column = "name";
  mapping::PredicateMapping price;
  price.predicate = "http://shop.example.org/vocab#price";
  price.column = "price";
  price.literal_datatype = "http://www.w3.org/2001/XMLSchema#double";
  cm.predicates = {name, price};
  sm.classes.push_back(cm);

  // --- 2. An RDF source: reviews in N-Triples --------------------------
  auto store = std::make_unique<rdf::TripleStore>();
  const std::string ntriples = R"(
<http://shop.example.org/r/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://shop.example.org/vocab#Review> .
<http://shop.example.org/r/1> <http://shop.example.org/vocab#about> <http://shop.example.org/p/0> .
<http://shop.example.org/r/1> <http://shop.example.org/vocab#stars> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://shop.example.org/r/2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://shop.example.org/vocab#Review> .
<http://shop.example.org/r/2> <http://shop.example.org/vocab#about> <http://shop.example.org/p/1> .
<http://shop.example.org/r/2> <http://shop.example.org/vocab#stars> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://shop.example.org/r/3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://shop.example.org/vocab#Review> .
<http://shop.example.org/r/3> <http://shop.example.org/vocab#about> <http://shop.example.org/p/0> .
<http://shop.example.org/r/3> <http://shop.example.org/vocab#stars> "4"^^<http://www.w3.org/2001/XMLSchema#integer> .
)";
  auto loaded = rdf::LoadNTriples(ntriples, store.get());
  if (!loaded.ok()) {
    std::fprintf(stderr, "load error: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }

  // --- 3. Register both with the mediator ------------------------------
  fed::FederatedEngine engine;
  if (!engine
           .RegisterSource(std::make_unique<wrapper::SqlWrapper>(
               "shopdb", db.get(), sm))
           .ok() ||
      !engine
           .RegisterSource(
               std::make_unique<wrapper::RdfWrapper>("reviews", store.get()))
           .ok()) {
    return 1;
  }

  // --- 4. Federated query across the two models ------------------------
  const std::string query = R"(
PREFIX shop: <http://shop.example.org/vocab#>
SELECT ?pname ?price ?stars WHERE {
  ?p a shop:Product ; shop:name ?pname ; shop:price ?price .
  ?r a shop:Review ; shop:about ?p ; shop:stars ?stars .
  FILTER (?price >= 600)
})";

  fed::PlanOptions options;
  options.network = net::NetworkProfile::Gamma3();  // slow: H2 pushes
  auto plan = engine.Plan(query, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("-- QEP --\n%s", plan->Explain().c_str());

  auto answer = engine.Execute(query, options);
  if (!answer.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- reviews of expensive products --\n");
  for (const rdf::Binding& row : answer->rows) {
    std::printf("  %-8s $%-7s %s stars\n", row.at("pname").value().c_str(),
                row.at("price").value().c_str(),
                row.at("stars").value().c_str());
  }
  return 0;
}
