// Network study: one query (Q3), the four simulated network conditions of
// the paper, both QEP families — prints an ASCII answer-trace plot per
// configuration (the interactive cousin of bench_fig2_answer_trace).
//
//   $ ./examples/network_study

#include <algorithm>
#include <cstdio>

#include "fed/engine.h"
#include "lslod/generator.h"
#include "lslod/queries.h"

using namespace lakefed;

namespace {

// Tiny ASCII plot: answers (y) over time (x).
void PlotTrace(const fed::AnswerTrace& trace) {
  constexpr int kCols = 60, kRows = 10;
  if (trace.num_answers() == 0) {
    std::printf("  (no answers)\n");
    return;
  }
  for (int r = kRows; r >= 1; --r) {
    size_t threshold =
        trace.num_answers() * static_cast<size_t>(r) / kRows;
    std::printf("  %6zu |", threshold);
    for (int c = 0; c < kCols; ++c) {
      double t = trace.completion_seconds * (c + 1) / kCols;
      std::printf("%s", trace.AnswersAt(t) >= threshold ? "#" : " ");
    }
    std::printf("\n");
  }
  std::printf("         +%s\n", std::string(kCols, '-').c_str());
  std::printf("          0%*.*fs\n", kCols - 1, 2, trace.completion_seconds);
}

}  // namespace

int main() {
  lslod::LakeConfig config;
  config.scale = 0.25;
  auto lake = lslod::BuildLake(config);
  if (!lake.ok()) {
    std::fprintf(stderr, "error: %s\n", lake.status().ToString().c_str());
    return 1;
  }
  const std::string& q3 = lslod::FindQuery("Q3")->sparql;
  std::printf("query Q3:\n%s\n", q3.c_str());

  for (const net::NetworkProfile& profile :
       net::NetworkProfile::PaperProfiles()) {
    for (fed::PlanMode mode : {fed::PlanMode::kPhysicalDesignUnaware,
                               fed::PlanMode::kPhysicalDesignAware}) {
      fed::PlanOptions options;
      options.mode = mode;
      options.network = profile;
      auto answer = (*lake)->engine->Execute(q3, options);
      if (!answer.ok()) {
        std::fprintf(stderr, "execution error: %s\n",
                     answer.status().ToString().c_str());
        return 1;
      }
      std::printf("\n== %s / %s: %zu answers, %.3fs total, %llu rows "
                  "shipped ==\n",
                  profile.name.c_str(), fed::PlanModeToString(mode).c_str(),
                  answer->rows.size(), answer->trace.completion_seconds,
                  static_cast<unsigned long long>(
                      answer->stats.messages_transferred));
      PlotTrace(answer->trace);
    }
  }
  return 0;
}
