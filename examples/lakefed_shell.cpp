// lakefed_shell: an interactive SPARQL shell over the synthetic LSLOD
// Semantic Data Lake. Type a SPARQL query terminated by an empty line, or a
// dot-command:
//
//   .help                 this text
//   .mode aware|unaware   switch the QEP family
//   .network NoDelay|Gamma1|Gamma2|Gamma3
//   .explain on|off       print the QEP before every execution
//   .explain <query>      cost-model EXPLAIN ANALYZE of a built-in query id
//                         (Q1..Q5, FIG1) or an inline SPARQL string: prints
//                         the plan with per-node estimated cardinalities,
//                         executes it, then shows estimated vs actual rows
//   .cost on|off          statistics-based (cost-model) planning
//   .h1 on|off  .h2 on|off  toggle the heuristics (aware mode)
//   .sources              list sources
//   .molecules            list RDF molecule templates
//   .queries              list the built-in benchmark queries
//   .run Q1..Q5|FIG1      execute a built-in query
//   .sql                  show the last SQL sent to each relational source
//   .faults               list fault profiles; `.faults <source> <spec>`
//                         injects faults (spec: outage, rate=0.1,
//                         drop_after=50, fail_connections=2, stall=20);
//                         `.faults clear` heals the lake and the breakers
//   .retry                show the retry policy; `.retry <attempts>
//                         [timeout_ms]` arms it, `.retry off` disarms
//   .hedge                show hedging state; `.hedge on [delay_ms]` races
//                         a straggling leaf against a replica after the
//                         delay (default: p95-driven), `.hedge off` disarms
//   .timeouts             per-source observed latency quantiles (p50/p95/
//                         p99) from the engine tracker; `.timeouts on|off`
//                         derives per-attempt timeouts from them
//   .failmode failfast|besteffort   unrecoverable-source handling
//   .pool <n>|off         route queries through the multi-tenant query
//                         service, operators on an n-worker shared pool
//                         (off = direct thread-per-operator execution)
//   .tenants              per-tenant running/queued/completed/quota + service
//                         admission stats (needs .pool)
//   .breakers             per-source circuit breaker states
//   .metrics [json]       engine-wide metrics snapshot (counters, gauges,
//                         latency histograms with p50/p95/p99), as aligned
//                         text or stable JSON
//   .spans <id|SPARQL>    execute a query in a session and print the
//                         hierarchical span tree (parse -> plan -> execute
//                         -> per-operator -> wrapper -> network transfer)
//   .profile <id|SPARQL>  EXPLAIN ANALYZE profile: runs the query (cost
//                         model on) and prints per-operator estimated vs
//                         actual rows with q-errors, the wall/compute/
//                         queue-wait/network time split, the backpressure-
//                         dominant operator and per-source traffic
//   .trace <id|SPARQL> <file>   execute a query and write its span tree as
//                         Chrome trace-event JSON (load the file in
//                         chrome://tracing or ui.perfetto.dev)
//   .cache                plan/sub-answer cache statistics; `.cache on|off`
//                         toggles both reuse layers for subsequent queries,
//                         `.cache clear` flushes them
//   .fingerprint <id|SPARQL>   the normalized plan-cache fingerprint of a
//                         query: canonical form, lifted literal parameters
//                         and the options digest
//   .monitor <port>|off   start/stop the monitoring plane: an HTTP endpoint
//                         on 127.0.0.1:<port> (0 = ephemeral) serving
//                         /metrics (Prometheus text), /healthz, /statusz
//                         (JSON) and /queryz (flight-recorder JSONL); also
//                         arms the query log
//   .sys [table]          the system meta-source: list the sys.* tables or
//                         print one (metrics, sources, queries, cache,
//                         scheduler) — the same tables are queryable in
//                         SPARQL via the <http://lakefed.io/sys#> vocabulary
//   .queryz [n|on]        dump the newest n slow-query flight-recorder
//                         records as JSONL (`on` arms the recorder without
//                         starting the monitor)
//   .quit
//
//   $ ./examples/lakefed_shell            # interactive
//   $ echo ".run Q2" | ./examples/lakefed_shell

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "common/string_util.h"
#include "fed/engine.h"
#include "fed/fingerprint.h"
#include "fed/meta_source.h"
#include "obs/trace_export.h"
#include "sparql/parser.h"
#include "lslod/generator.h"
#include "lslod/queries.h"
#include "svc/service.h"
#include "wrapper/sql_wrapper.h"

using namespace lakefed;

namespace {

void PrintAnswer(const fed::QueryAnswer& answer) {
  // header
  for (const std::string& var : answer.variables) {
    std::printf("%-40s", ("?" + var).c_str());
  }
  std::printf("\n");
  size_t shown = 0;
  for (const rdf::Binding& row : answer.rows) {
    if (shown++ >= 20) {
      std::printf("... (%zu more rows)\n", answer.rows.size() - 20);
      break;
    }
    for (const std::string& var : answer.variables) {
      auto it = row.find(var);
      std::printf("%-40s",
                  it == row.end() ? "(unbound)" : it->second.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("%zu answer(s) in %.3fs (first after %.3fs); %llu rows "
              "shipped, %.1f ms simulated delay\n",
              answer.rows.size(), answer.trace.completion_seconds,
              answer.trace.TimeToFirst(),
              static_cast<unsigned long long>(
                  answer.stats.messages_transferred),
              answer.stats.network_delay_ms);
  const fed::ExecutionStats& stats = answer.stats;
  if (stats.retries > 0 || stats.failovers > 0 || stats.faults_injected > 0 ||
      stats.breaker_rejections > 0 || stats.partial ||
      !stats.failed_sources.empty()) {
    std::printf("recovery: %llu retries, %llu failovers, %llu faults "
                "injected, %llu breaker rejections%s\n",
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.failovers),
                static_cast<unsigned long long>(stats.faults_injected),
                static_cast<unsigned long long>(stats.breaker_rejections),
                stats.partial ? " — PARTIAL ANSWER" : "");
    for (const auto& [source, error] : stats.failed_sources) {
      std::printf("  failed source %s: %s\n", source.c_str(), error.c_str());
    }
  }
}

class Shell {
 public:
  explicit Shell(lslod::DataLake* lake) : lake_(lake) {
    options_.network = net::NetworkProfile::Gamma1();
    // The system meta-source (sys.* tables). Its vocabulary is disjoint
    // from every data molecule, so source selection for normal queries is
    // unchanged; the scheduler table reads the pool if one is running.
    auto meta = std::make_unique<fed::MetaSource>(
        lake_->engine.get(),
        fed::MetaSource::Providers{[this]() -> fed::SchedulerInfo {
          return service_ != nullptr ? service_->SchedulerSnapshot()
                                     : fed::SchedulerInfo{};
        }});
    meta_ = meta.get();
    if (!lake_->engine->RegisterSource(std::move(meta)).ok()) {
      meta_ = nullptr;  // sealed or duplicate: .sys degrades gracefully
    }
  }

  void Execute(const std::string& query) {
    if (explain_) {
      auto plan = lake_->engine->Plan(query, options_);
      if (!plan.ok()) {
        std::printf("plan error: %s\n", plan.status().ToString().c_str());
        return;
      }
      std::printf("%s\n", plan->Explain().c_str());
    }
    Result<fed::QueryAnswer> answer = fed::QueryAnswer{};
    if (pool_on_ && service_ != nullptr) {
      // Pool mode: through the admission-controlled service, operators on
      // the shared worker pool.
      svc::ServiceRequest request;
      request.tenant = tenant_;
      request.query = fed::QueryRequest::Text(query, options_);
      answer = service_->Execute(std::move(request));
    } else {
      answer = lake_->engine->Execute(query, options_);
    }
    if (!answer.ok()) {
      std::printf("error: %s\n", answer.status().ToString().c_str());
      return;
    }
    PrintAnswer(*answer);
    last_stats_ = answer->OperatorStatsText();
  }

  // Cost-model EXPLAIN ANALYZE: plan `text` (a built-in query id or inline
  // SPARQL) with statistics-based planning forced on, execute it, and show
  // each operator's estimated vs actual cardinality.
  void ExplainQuery(const std::string& text) {
    const lslod::BenchmarkQuery* q = lslod::FindQuery(text);
    const std::string& sparql = q != nullptr ? q->sparql : text;
    fed::PlanOptions opts = options_;
    opts.use_cost_model = true;
    auto plan = lake_->engine->Plan(sparql, opts);
    if (!plan.ok()) {
      std::printf("plan error: %s\n", plan.status().ToString().c_str());
      return;
    }
    std::printf("%s\n", plan->Explain().c_str());
    auto answer = lake_->engine->Execute(sparql, opts);
    if (!answer.ok()) {
      std::printf("error: %s\n", answer.status().ToString().c_str());
      return;
    }
    PrintAnswer(*answer);
    last_stats_ = answer->OperatorStatsText();
    std::printf("operators (actual rows, [est≈...] where estimated):\n%s",
                last_stats_.c_str());
  }

  // Returns false on .quit.
  bool Command(const std::string& line) {
    std::istringstream in(line);
    std::string cmd, arg;
    in >> cmd >> arg;
    if (cmd == ".quit" || cmd == ".exit") return false;
    if (cmd == ".help") {
      std::printf(
          "Enter a SPARQL query followed by an empty line, or:\n"
          "  .mode aware|unaware   .network NoDelay|Gamma1|Gamma2|Gamma3\n"
          "  .explain on|off       .explain <query id or SPARQL>\n"
          "  .cost on|off          .h1 on|off   .h2 on|off\n"
          "  .batch <n>            rows per exchanged morsel (1 = "
          "row-at-a-time)\n"
          "  .sources  .molecules  .queries  .run <id>  .sql  .stats  "
          ".quit\n"
          "  .faults [<source> <spec> | clear]   inject network faults\n"
          "      spec: outage rate=0.1 drop_after=50 fail_connections=2 "
          "stall=20\n"
          "  .retry [<attempts> [timeout_ms] | off]   retry with backoff\n"
          "  .hedge [on [delay_ms] | off]   race slow leaves against "
          "replicas\n"
          "  .timeouts [on|off]    observed per-source latency quantiles; "
          "on = adaptive per-attempt timeouts\n"
          "  .failmode failfast|besteffort   drop dead sources vs fail "
          "fast\n"
          "  .pool <n>|off         run queries through the multi-tenant "
          "service on an n-worker shared pool\n"
          "  .tenants              per-tenant running/queued/completed/quota + "
          "service admission stats\n"
          "  .breakers             circuit breaker states\n"
          "  .metrics [json]       engine-wide metrics (counters, latency "
          "histograms)\n"
          "  .spans <id|SPARQL>    run a query and print its span tree\n"
          "  .profile <id|SPARQL>  EXPLAIN ANALYZE: per-operator est vs "
          "actual rows (q-errors),\n"
          "      wall/compute/queue-wait/network split, backpressure "
          "verdict\n"
          "  .trace <id|SPARQL> <file>   run a query and export a Chrome "
          "trace (chrome://tracing)\n"
          "  .cache [on|off|clear]   plan/sub-answer cache stats and "
          "toggles\n"
          "  .fingerprint <id|SPARQL>   normalized plan-cache fingerprint\n"
          "  .monitor <port>|off   HTTP monitoring endpoint on 127.0.0.1 "
          "(/metrics /healthz /statusz /queryz)\n"
          "  .sys [table]          system meta-source tables (metrics, "
          "sources, queries, cache, scheduler)\n"
          "  .queryz [n|on]        slow-query flight-recorder records as "
          "JSONL\n");
    } else if (cmd == ".mode") {
      if (arg == "aware") {
        options_.mode = fed::PlanMode::kPhysicalDesignAware;
      } else if (arg == "unaware") {
        options_.mode = fed::PlanMode::kPhysicalDesignUnaware;
      } else {
        std::printf("usage: .mode aware|unaware\n");
        return true;
      }
      std::printf("mode = %s\n", fed::PlanModeToString(options_.mode).c_str());
    } else if (cmd == ".network") {
      bool found = false;
      for (const net::NetworkProfile& p : net::NetworkProfile::PaperProfiles()) {
        if (EqualsIgnoreCase(p.name, arg)) {
          options_.network = p;
          found = true;
        }
      }
      std::printf(found ? "network = %s (mean %.1f ms/msg)\n"
                        : "unknown network '%s'%.0f\n",
                  found ? options_.network.name.c_str() : arg.c_str(),
                  found ? options_.network.MeanLatencyMs() : 0.0);
    } else if (cmd == ".explain") {
      if (arg.empty() || arg == "on" || arg == "off") {
        explain_ = arg != "off";
        std::printf("explain = %s\n", explain_ ? "on" : "off");
      } else {
        // EXPLAIN ANALYZE of the rest of the line (query id or SPARQL).
        std::string rest(TrimWhitespace(line.substr(cmd.size())));
        ExplainQuery(rest);
      }
    } else if (cmd == ".batch") {
      if (!arg.empty()) {
        char* end = nullptr;
        const long n = std::strtol(arg.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n < 1) {
          std::printf("usage: .batch <n>  (n >= 1; 1 = row-at-a-time)\n");
          return true;
        }
        options_.batch_size = static_cast<size_t>(n);
      }
      std::printf("batch size = %zu row%s per morsel\n", options_.batch_size,
                  options_.batch_size == 1 ? "" : "s");
    } else if (cmd == ".cost") {
      options_.use_cost_model = arg != "off";
      std::printf("cost model = %s\n", arg != "off" ? "on" : "off");
    } else if (cmd == ".h1") {
      options_.heuristic1_join_pushdown = arg != "off";
      std::printf("heuristic 1 = %s\n", arg != "off" ? "on" : "off");
    } else if (cmd == ".h2") {
      options_.heuristic2_filter_placement = arg != "off";
      std::printf("heuristic 2 = %s\n", arg != "off" ? "on" : "off");
    } else if (cmd == ".sources") {
      for (const auto& [id, db] : lake_->databases) {
        std::printf("  %-12s %s (%zu tables)\n", id.c_str(),
                    lake_->stores.count(id) > 0 ? "RDF" : "RDB",
                    db->catalog().num_tables());
      }
    } else if (cmd == ".molecules") {
      for (const auto& [cls, m] : lake_->engine->catalog().molecules()) {
        std::printf("  %-55s %zu predicates\n", cls.c_str(),
                    m.predicates.size());
      }
    } else if (cmd == ".queries") {
      for (const lslod::BenchmarkQuery& q : lslod::BenchmarkQueries()) {
        std::printf("  %s: %s\n", q.id.c_str(), q.description.c_str());
      }
      std::printf("  FIG1: %s\n",
                  lslod::MotivatingExampleQuery().description.c_str());
    } else if (cmd == ".run") {
      const lslod::BenchmarkQuery* q = lslod::FindQuery(arg);
      if (q == nullptr) {
        std::printf("unknown query '%s' (try .queries)\n", arg.c_str());
      } else {
        std::printf("%s\n", q->sparql.c_str());
        Execute(q->sparql);
      }
    } else if (cmd == ".stats") {
      std::printf("%s", last_stats_.empty() ? "(no execution yet)\n"
                                            : last_stats_.c_str());
    } else if (cmd == ".faults") {
      if (arg.empty()) {
        if (options_.faults.empty()) {
          std::printf("no fault profiles (network healthy)\n");
        }
        for (const auto& [source, profile] : options_.faults) {
          std::printf("  %-12s %s\n", source.c_str(),
                      profile.ToString().c_str());
        }
      } else if (arg == "clear") {
        options_.faults.clear();
        lake_->engine->breakers()->Reset();
        std::printf("fault profiles cleared; circuit breakers reset\n");
      } else {
        // `.faults <source> <spec...>` — everything after the source name
        // is the fault spec.
        std::string rest(TrimWhitespace(line.substr(cmd.size())));
        std::string spec(TrimWhitespace(rest.substr(arg.size())));
        auto profile = net::ParseFaultProfile(spec);
        if (!profile.ok()) {
          std::printf("error: %s\n", profile.status().ToString().c_str());
        } else if (lake_->engine->wrapper(arg) == nullptr) {
          std::printf("unknown source '%s' (try .sources)\n", arg.c_str());
        } else {
          options_.faults[arg] = *profile;
          std::printf("  %-12s %s\n", arg.c_str(),
                      profile->ToString().c_str());
        }
      }
    } else if (cmd == ".retry") {
      if (arg.empty()) {
        if (!options_.retry.enabled()) {
          std::printf("retry = off (single attempt)\n");
        } else {
          std::printf("retry = %d attempts, backoff %.1f..%.1f ms x%.1f, "
                      "attempt timeout %.1f ms\n",
                      options_.retry.max_attempts,
                      options_.retry.initial_backoff_ms,
                      options_.retry.max_backoff_ms,
                      options_.retry.backoff_multiplier,
                      options_.retry.attempt_timeout_ms);
        }
      } else if (arg == "off") {
        options_.retry = RetryPolicy();
        std::printf("retry = off (single attempt)\n");
      } else {
        int attempts = std::atoi(arg.c_str());
        if (attempts < 1) {
          std::printf("usage: .retry <attempts> [timeout_ms] | off\n");
          return true;
        }
        options_.retry.max_attempts = attempts;
        std::string timeout;
        if (in >> timeout) {
          options_.retry.attempt_timeout_ms = std::atof(timeout.c_str());
        }
        std::printf("retry = %d attempts, attempt timeout %.1f ms\n",
                    options_.retry.max_attempts,
                    options_.retry.attempt_timeout_ms);
      }
    } else if (cmd == ".hedge") {
      if (arg.empty()) {
        if (!options_.hedge.enabled) {
          std::printf("hedge = off\n");
        } else {
          std::printf("hedge = on: delay %.1fx p%.0f (fallback %.1f ms, "
                      "floor %.1f ms), budget %d/query %d/source\n",
                      options_.hedge.multiplier,
                      options_.hedge.quantile * 100,
                      options_.hedge.fallback_delay_ms,
                      options_.hedge.min_delay_ms,
                      options_.hedge.max_per_query,
                      options_.hedge.max_per_source);
        }
      } else if (arg == "off") {
        options_.hedge = fed::PlanOptions::HedgeConfig();
        std::printf("hedge = off\n");
      } else if (arg == "on") {
        options_.hedge.enabled = true;
        std::string delay;
        if (in >> delay) {
          options_.hedge.fallback_delay_ms = std::atof(delay.c_str());
        }
        std::printf("hedge = on (fallback delay %.1f ms; p%.0f-driven once "
                    "%llu samples accrue)\n",
                    options_.hedge.fallback_delay_ms,
                    options_.hedge.quantile * 100,
                    static_cast<unsigned long long>(
                        options_.hedge.min_samples));
      } else {
        std::printf("usage: .hedge [on [delay_ms] | off]\n");
      }
    } else if (cmd == ".timeouts") {
      if (arg == "on") {
        options_.adaptive_timeout.enabled = true;
        std::printf("adaptive timeouts = on (%.1fx p%.0f, floor %.1f ms, "
                    "after %llu samples)\n",
                    options_.adaptive_timeout.multiplier,
                    options_.adaptive_timeout.quantile * 100,
                    options_.adaptive_timeout.floor_ms,
                    static_cast<unsigned long long>(
                        options_.adaptive_timeout.min_samples));
      } else if (arg == "off") {
        options_.adaptive_timeout = fed::PlanOptions::AdaptiveTimeoutConfig();
        std::printf("adaptive timeouts = off\n");
      } else if (!arg.empty()) {
        std::printf("usage: .timeouts [on|off]\n");
      } else {
        std::printf("adaptive timeouts = %s\n",
                    options_.adaptive_timeout.enabled ? "on" : "off");
        auto snapshot = lake_->engine->latency()->Snapshot();
        if (snapshot.empty()) {
          std::printf("no latency samples yet (run a query first)\n");
        } else {
          std::printf("  %-12s %8s %10s %10s %10s\n", "source", "samples",
                      "p50_ms", "p95_ms", "p99_ms");
          for (const auto& [source, q] : snapshot) {
            std::printf("  %-12s %8llu %10.2f %10.2f %10.2f\n",
                        source.c_str(),
                        static_cast<unsigned long long>(q.samples), q.p50,
                        q.p95, q.p99);
          }
        }
      }
    } else if (cmd == ".failmode") {
      if (arg == "besteffort" || arg == "best-effort") {
        options_.failure_mode = fed::FailureMode::kBestEffort;
      } else if (arg == "failfast" || arg == "fail-fast") {
        options_.failure_mode = fed::FailureMode::kFailFast;
      } else {
        std::printf("usage: .failmode failfast|besteffort\n");
        return true;
      }
      std::printf("failure mode = %s\n",
                  fed::FailureModeToString(options_.failure_mode).c_str());
    } else if (cmd == ".pool") {
      // `.pool <n>` routes executions through the multi-tenant service on
      // an n-worker shared pool; `.pool off` reverts to the direct
      // thread-per-operator path; bare `.pool` shows the current state.
      if (arg == "off" || arg == "0") {
        pool_on_ = false;
        // Keep the service alive if it hosts the monitoring endpoint;
        // queries just stop routing through it.
        if (service_ != nullptr && !service_->monitoring()) service_.reset();
      } else if (!arg.empty()) {
        char* end = nullptr;
        const long n = std::strtol(arg.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n < 1) {
          std::printf("usage: .pool <workers>|off\n");
          return true;
        }
        // Re-creating the service re-binds a running monitor to it.
        const bool was_monitoring =
            service_ != nullptr && service_->monitoring();
        const uint16_t monitor_port =
            was_monitoring ? service_->monitor_port() : 0;
        service_.reset();
        svc::ServiceConfig config;
        config.scheduler.workers = static_cast<size_t>(n);
        service_ = std::make_unique<svc::QueryService>(lake_->engine.get(),
                                                       config);
        pool_on_ = true;
        if (was_monitoring) {
          Status restarted = service_->StartMonitoring(monitor_port);
          if (!restarted.ok()) {
            std::printf("warning: monitor did not restart: %s\n",
                        restarted.ToString().c_str());
          }
        }
      }
      if (!pool_on_ || service_ == nullptr) {
        std::printf("pool = off (thread-per-operator dataflow)\n");
      } else {
        std::printf("pool = %zu workers, %zu I/O threads, %zu run slots "
                    "(tenant '%s')\n",
                    service_->scheduler()->num_workers(),
                    service_->scheduler()->num_io_threads(),
                    service_->run_slots(), tenant_.c_str());
      }
    } else if (cmd == ".tenants") {
      if (service_ == nullptr) {
        std::printf("no pool (enable with .pool <workers>)\n");
        return true;
      }
      auto tenants = service_->Tenants();
      if (tenants.empty()) std::printf("no tenant activity yet\n");
      for (const auto& [tenant, info] : tenants) {
        std::printf("  %-12s %zu running, %zu queued, %zu completed, "
                    "quota %s\n",
                    tenant.c_str(), info.running, info.queued, info.completed,
                    info.quota == 0 ? "unlimited"
                                    : std::to_string(info.quota).c_str());
      }
      const svc::QueryService::Stats stats = service_->stats();
      std::printf("service: %llu admitted, %llu shed, %llu expired, "
                  "%llu degraded, %llu completed, %llu errors\n",
                  static_cast<unsigned long long>(stats.admitted),
                  static_cast<unsigned long long>(stats.shed),
                  static_cast<unsigned long long>(stats.expired),
                  static_cast<unsigned long long>(stats.degraded),
                  static_cast<unsigned long long>(stats.completed),
                  static_cast<unsigned long long>(stats.errors));
    } else if (cmd == ".breakers") {
      auto snapshot = lake_->engine->breakers()->Snapshot();
      if (snapshot.empty()) {
        std::printf("no circuit breaker activity yet\n");
      }
      for (const auto& entry : snapshot) {
        std::printf("  %-12s %-9s %llu consecutive, %llu total failures, "
                    "%llu rejected\n",
                    entry.source_id.c_str(),
                    fed::BreakerStateToString(entry.state).c_str(),
                    static_cast<unsigned long long>(
                        entry.consecutive_failures),
                    static_cast<unsigned long long>(entry.total_failures),
                    static_cast<unsigned long long>(
                        entry.rejected_requests));
      }
    } else if (cmd == ".metrics") {
      obs::MetricsSnapshot snapshot = lake_->engine->MetricsSnapshot();
      if (snapshot.empty()) {
        std::printf("no metrics yet (run a query first)\n");
      } else if (arg == "json") {
        std::printf("%s\n", snapshot.ToJson().c_str());
      } else {
        std::printf("%s", snapshot.ToText().c_str());
      }
    } else if (cmd == ".spans") {
      // `.spans <query id or SPARQL>` — run the query through a session
      // and print its span tree.
      std::string rest(TrimWhitespace(line.substr(cmd.size())));
      if (rest.empty()) {
        std::printf("usage: .spans <query id or SPARQL>\n");
        return true;
      }
      const lslod::BenchmarkQuery* q = lslod::FindQuery(rest);
      const std::string& sparql = q != nullptr ? q->sparql : rest;
      auto stream = lake_->engine->CreateSession(
          fed::QueryRequest::Text(sparql, options_));
      if (!stream.ok()) {
        std::printf("error: %s\n", stream.status().ToString().c_str());
        return true;
      }
      auto answer = (*stream)->Drain();
      if (!answer.ok()) {
        std::printf("error: %s\n", answer.status().ToString().c_str());
        return true;
      }
      const obs::SpanRecorder* spans = (*stream)->spans();
      if (spans == nullptr) {
        std::printf("span collection is off\n");
      } else {
        if (spans->dropped() > 0) {
          std::printf("WARNING: %llu span(s) dropped (recorder full) — the "
                      "tree below is truncated\n",
                      static_cast<unsigned long long>(spans->dropped()));
        }
        std::printf("%s", spans->ToText().c_str());
      }
      std::printf("%zu answer(s)\n", answer->rows.size());
      last_stats_ = answer->OperatorStatsText();
    } else if (cmd == ".profile") {
      // `.profile <query id or SPARQL>` — EXPLAIN ANALYZE through a
      // session, with cost-model planning forced on so every operator has
      // an estimate to compare against.
      std::string rest(TrimWhitespace(line.substr(cmd.size())));
      if (rest.empty()) {
        std::printf("usage: .profile <query id or SPARQL>\n");
        return true;
      }
      const lslod::BenchmarkQuery* q = lslod::FindQuery(rest);
      const std::string& sparql = q != nullptr ? q->sparql : rest;
      fed::PlanOptions opts = options_;
      opts.use_cost_model = true;
      opts.collect_metrics = true;
      auto stream = lake_->engine->CreateSession(
          fed::QueryRequest::Text(sparql, opts));
      if (!stream.ok()) {
        std::printf("error: %s\n", stream.status().ToString().c_str());
        return true;
      }
      auto answer = (*stream)->Drain();
      if (!answer.ok()) {
        std::printf("error: %s\n", answer.status().ToString().c_str());
      }
      // Failed or cancelled runs still have a profile (partial work,
      // terminal status inside).
      std::printf("%s", (*stream)->profile().ToText().c_str());
      if (answer.ok()) last_stats_ = answer->OperatorStatsText();
    } else if (cmd == ".trace") {
      // `.trace <query id or SPARQL> <file>` — the last token is the
      // output path, everything before it the query.
      std::string rest(TrimWhitespace(line.substr(cmd.size())));
      size_t sep = rest.find_last_of(" \t");
      if (rest.empty() || sep == std::string::npos) {
        std::printf("usage: .trace <query id or SPARQL> <file>\n");
        return true;
      }
      std::string path(TrimWhitespace(rest.substr(sep)));
      std::string text(TrimWhitespace(rest.substr(0, sep)));
      const lslod::BenchmarkQuery* q = lslod::FindQuery(text);
      const std::string& sparql = q != nullptr ? q->sparql : text;
      auto stream = lake_->engine->CreateSession(
          fed::QueryRequest::Text(sparql, options_));
      if (!stream.ok()) {
        std::printf("error: %s\n", stream.status().ToString().c_str());
        return true;
      }
      auto answer = (*stream)->Drain();
      if (!answer.ok()) {
        std::printf("error: %s\n", answer.status().ToString().c_str());
        return true;
      }
      const obs::SpanRecorder* spans = (*stream)->spans();
      if (spans == nullptr) {
        std::printf("span collection is off\n");
        return true;
      }
      Status st = obs::WriteChromeTrace(*spans, path);
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        return true;
      }
      std::printf("wrote %zu span(s) to %s — open in chrome://tracing or "
                  "ui.perfetto.dev\n",
                  spans->Snapshot().size(), path.c_str());
      last_stats_ = answer->OperatorStatsText();
    } else if (cmd == ".cache") {
      if (arg == "on" || arg == "off") {
        const bool on = arg == "on";
        options_.plan_cache = on;
        options_.answer_cache = on;
        std::printf("plan + sub-answer caching = %s\n", on ? "on" : "off");
      } else if (arg == "clear") {
        lake_->engine->plan_cache()->Clear();
        lake_->engine->answer_cache()->Clear();
        std::printf("caches cleared\n");
      } else if (!arg.empty()) {
        std::printf("usage: .cache [on|off|clear]\n");
      } else {
        std::printf("caching = %s\n",
                    options_.plan_cache ? "on" : "off");
        auto print = [](const char* name, const fed::CacheStats& s) {
          std::printf(
              "  %-12s %llu hits  %llu misses  %llu inserts  %llu "
              "evictions  %llu invalidations  (%llu entries, %llu bytes)\n",
              name, static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.inserts),
              static_cast<unsigned long long>(s.evictions),
              static_cast<unsigned long long>(s.invalidations),
              static_cast<unsigned long long>(s.entries),
              static_cast<unsigned long long>(s.bytes));
        };
        print("plans", lake_->engine->plan_cache()->plan_stats());
        print("parsed", lake_->engine->plan_cache()->parsed_stats());
        print("sub-answers", lake_->engine->answer_cache()->stats());
      }
    } else if (cmd == ".fingerprint") {
      std::string rest(TrimWhitespace(line.substr(cmd.size())));
      if (rest.empty()) {
        std::printf("usage: .fingerprint <query id or SPARQL>\n");
        return true;
      }
      const lslod::BenchmarkQuery* q = lslod::FindQuery(rest);
      const std::string& sparql = q != nullptr ? q->sparql : rest;
      auto parsed = sparql::ParseSparql(sparql);
      if (!parsed.ok()) {
        std::printf("parse error: %s\n", parsed.status().ToString().c_str());
        return true;
      }
      std::printf("%s",
                  fed::FingerprintQuery(*parsed, options_).ToText().c_str());
    } else if (cmd == ".monitor") {
      if (arg == "off") {
        if (service_ != nullptr) service_->StopMonitoring();
        if (!pool_on_) service_.reset();  // existed only for the monitor
        std::printf("monitoring off\n");
      } else if (!arg.empty()) {
        char* end = nullptr;
        const long port = std::strtol(arg.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
          std::printf("usage: .monitor <port>|off (port 0 = ephemeral)\n");
          return true;
        }
        // Arm the flight recorder before binding, so /queryz serves it.
        lake_->engine->EnableQueryLog();
        if (service_ == nullptr) {
          // The exporter lives on the query service; host it on a default
          // pool without routing queries through it (that stays `.pool`).
          service_ = std::make_unique<svc::QueryService>(lake_->engine.get(),
                                                         svc::ServiceConfig{});
        }
        Status started =
            service_->StartMonitoring(static_cast<uint16_t>(port));
        if (!started.ok()) {
          std::printf("error: %s\n", started.ToString().c_str());
          return true;
        }
        std::printf("monitoring on http://127.0.0.1:%u "
                    "(/metrics /healthz /statusz /queryz)\n",
                    service_->monitor_port());
      } else if (service_ != nullptr && service_->monitoring()) {
        std::printf("monitoring on http://127.0.0.1:%u\n",
                    service_->monitor_port());
      } else {
        std::printf("monitoring off (start with .monitor <port>)\n");
      }
    } else if (cmd == ".sys") {
      if (meta_ == nullptr) {
        std::printf("meta-source unavailable\n");
        return true;
      }
      if (arg.empty()) {
        std::printf("sys tables:");
        for (const std::string& table : fed::MetaSource::Tables()) {
          std::printf(" %s", table.c_str());
        }
        std::printf("\nprint one with .sys <table>; query them in SPARQL "
                    "via the <%s> vocabulary\n",
                    fed::kSysNamespace);
      } else {
        std::printf("%s", meta_->RenderTable(arg).c_str());
      }
    } else if (cmd == ".queryz") {
      if (arg == "on") {
        lake_->engine->EnableQueryLog();
        std::printf("query log on (slow threshold %.0f ms, capacity %zu)\n",
                    lake_->engine->query_log()->config().slow_ms,
                    lake_->engine->query_log()->config().capacity);
        return true;
      }
      const obs::QueryLog* log = lake_->engine->query_log();
      if (log == nullptr) {
        std::printf(
            "query log off (arm with .queryz on or .monitor <port>)\n");
        return true;
      }
      size_t n = 10;
      if (!arg.empty()) {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(arg.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          std::printf("usage: .queryz [n|on]\n");
          return true;
        }
        n = static_cast<size_t>(parsed);
      }
      const std::string jsonl = log->ToJsonl(n);
      if (jsonl.empty()) {
        std::printf("query log empty (%llu recorded so far)\n",
                    static_cast<unsigned long long>(log->total_recorded()));
      } else {
        std::printf("%s", jsonl.c_str());
      }
    } else if (cmd == ".sql") {
      for (const auto& [id, db] : lake_->databases) {
        auto* w = dynamic_cast<wrapper::SqlWrapper*>(lake_->engine->wrapper(id));
        if (w != nullptr && !w->last_sql().empty()) {
          std::printf("  %-12s %s\n", id.c_str(), w->last_sql().c_str());
        }
      }
    } else {
      std::printf("unknown command %s (try .help)\n", cmd.c_str());
    }
    return true;
  }

  int Run() {
    std::printf(
        "LakeFed shell — %zu sources ready. SPARQL + empty line to run; "
        ".help for commands.\n",
        lake_->engine->num_sources());
    std::string buffer;
    std::string line;
    while (true) {
      std::printf(buffer.empty() ? "lakefed> " : "      -> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      std::string_view trimmed = TrimWhitespace(line);
      if (buffer.empty() && !trimmed.empty() && trimmed[0] == '.') {
        if (!Command(std::string(trimmed))) break;
        continue;
      }
      if (trimmed.empty()) {
        if (!buffer.empty()) {
          Execute(buffer);
          buffer.clear();
        }
        continue;
      }
      buffer += line;
      buffer += '\n';
    }
    if (!buffer.empty()) Execute(buffer);  // trailing query without newline
    std::printf("\n");
    return 0;
  }

 private:
  lslod::DataLake* lake_;
  fed::PlanOptions options_;
  bool explain_ = false;
  std::string last_stats_;
  // Pool mode (.pool <n>): executions go through the multi-tenant service.
  // The service can also exist with pool_on_ = false, purely to host the
  // monitoring endpoint (.monitor without .pool).
  std::unique_ptr<svc::QueryService> service_;
  bool pool_on_ = false;
  std::string tenant_ = "shell";
  // The registered system meta-source (owned by the engine).
  fed::MetaSource* meta_ = nullptr;
};

}  // namespace

int main() {
  lslod::LakeConfig config;
  config.scale = 0.2;
  auto lake = lslod::BuildLake(config);
  if (!lake.ok()) {
    std::fprintf(stderr, "error: %s\n", lake.status().ToString().c_str());
    return 1;
  }
  Shell shell(lake->get());
  return shell.Run();
}
