// A genuinely heterogeneous Semantic Data Lake: some datasets stay in
// relational databases, others are served natively as RDF — one federated
// SPARQL query spans both data models. Also shows the RDF-MT source
// descriptions the mediator uses for source selection.
//
//   $ ./examples/heterogeneous_lake

#include <cstdio>

#include "fed/engine.h"
#include "lslod/generator.h"
#include "lslod/queries.h"
#include "lslod/vocab.h"

using namespace lakefed;

int main() {
  // KEGG and GOA become native RDF endpoints; the other eight datasets stay
  // relational. The data is identical either way (materialized through the
  // same mappings).
  lslod::LakeConfig config;
  config.scale = 0.2;
  config.rdf_sources = {lslod::kKegg, lslod::kGoa};
  auto lake = lslod::BuildLake(config);
  if (!lake.ok()) {
    std::fprintf(stderr, "error: %s\n", lake.status().ToString().c_str());
    return 1;
  }
  fed::FederatedEngine& engine = *(*lake)->engine;

  std::printf("sources: %zu relational + %zu RDF\n",
              (*lake)->databases.size() - (*lake)->stores.size(),
              (*lake)->stores.size());
  std::printf("kegg triple store holds %zu triples\n\n",
              (*lake)->stores.at(lslod::kKegg)->size());

  std::printf("-- RDF molecule templates (source descriptions) --\n");
  for (const auto& [class_iri, molecule] : engine.catalog().molecules()) {
    std::printf("  %-55s %2zu predicates, sources:", class_iri.c_str(),
                molecule.predicates.size());
    for (const std::string& s : molecule.sources) {
      std::printf(" %s", s.c_str());
    }
    std::printf("\n");
  }

  // Q4 joins KEGG (now RDF) with GOA (now RDF); FIG1 spans RDB-only
  // sources; this query mixes the models: KEGG (RDF) x DrugBank (RDB).
  const std::string query = R"(
PREFIX kegg: <http://lslod.example.org/kegg/vocab#>
PREFIX db: <http://lslod.example.org/drugbank/vocab#>
SELECT ?cname ?dname WHERE {
  ?c a kegg:Compound ; kegg:name ?cname ; kegg:relatedSymbol ?sym .
  ?d a db:Drug ; db:name ?dname ; db:target ?sym .
} LIMIT 15)";

  fed::PlanOptions options;
  options.network = net::NetworkProfile::Gamma1();
  auto plan = engine.Plan(query, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- mixed-model QEP (RDF kegg x RDB drugbank) --\n%s",
              plan->Explain().c_str());

  auto answer = engine.Execute(query, options);
  if (!answer.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- answers (%zu) --\n", answer->rows.size());
  for (const rdf::Binding& row : answer->rows) {
    std::printf("  compound %-22s targets the same gene as drug %s\n",
                row.at("cname").value().c_str(),
                row.at("dname").value().c_str());
  }
  return 0;
}
