// Quickstart: build a Semantic Data Lake, run a federated SPARQL query,
// inspect the plan and the answers.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "fed/engine.h"
#include "lslod/generator.h"

using namespace lakefed;

int main() {
  // 1. Build the synthetic LSLOD lake: ten relational endpoints, 3NF
  //    tables, PK indexes, and advisor-selected secondary indexes.
  lslod::LakeConfig config;
  config.scale = 0.2;
  auto lake = lslod::BuildLake(config);
  if (!lake.ok()) {
    std::fprintf(stderr, "error: %s\n", lake.status().ToString().c_str());
    return 1;
  }
  fed::FederatedEngine& engine = *(*lake)->engine;
  std::printf("Data Lake ready: %zu sources, %zu molecule templates\n",
              engine.num_sources(), engine.catalog().size());

  // 2. A federated query: drugs and their side effects, two sources.
  const std::string query = R"(
PREFIX db: <http://lslod.example.org/drugbank/vocab#>
PREFIX sider: <http://lslod.example.org/sider/vocab#>
SELECT ?name ?effect WHERE {
  ?drug a db:Drug ; db:name ?name .
  ?se a sider:SideEffect ; sider:drug ?drug ; sider:effectName ?effect .
  FILTER STRSTARTS(?name, "drug00")
} LIMIT 10)";

  // 3. Plan it physical-design-aware on a slow network and show the QEP.
  fed::PlanOptions options;
  options.mode = fed::PlanMode::kPhysicalDesignAware;
  options.network = net::NetworkProfile::Gamma2();

  auto plan = engine.Plan(query, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- query execution plan --\n%s", plan->Explain().c_str());

  // 4. Execute and print answers as they were produced over time.
  auto answer = engine.Execute(query, options);
  if (!answer.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- answers (%zu, %.3fs total, first after %.3fs) --\n",
              answer->rows.size(), answer->trace.completion_seconds,
              answer->trace.TimeToFirst());
  for (size_t i = 0; i < answer->rows.size(); ++i) {
    const rdf::Binding& row = answer->rows[i];
    std::printf("  [%5.3fs] %s -> %s\n", answer->trace.timestamps[i],
                row.at("name").value().c_str(),
                row.at("effect").value().c_str());
  }
  std::printf("\nrows shipped from sources: %llu (simulated delay %.1f ms)\n",
              static_cast<unsigned long long>(
                  answer->stats.messages_transferred),
              answer->stats.network_delay_ms);
  return 0;
}
