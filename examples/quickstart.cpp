// Quickstart: build a Semantic Data Lake, run a federated SPARQL query,
// inspect the plan and the answers.
//
//   $ ./examples/quickstart

#include <chrono>
#include <cstdio>

#include "fed/engine.h"
#include "lslod/generator.h"

using namespace lakefed;

int main() {
  // 1. Build the synthetic LSLOD lake: ten relational endpoints, 3NF
  //    tables, PK indexes, and advisor-selected secondary indexes.
  lslod::LakeConfig config;
  config.scale = 0.2;
  auto lake = lslod::BuildLake(config);
  if (!lake.ok()) {
    std::fprintf(stderr, "error: %s\n", lake.status().ToString().c_str());
    return 1;
  }
  fed::FederatedEngine& engine = *(*lake)->engine;
  std::printf("Data Lake ready: %zu sources, %zu molecule templates\n",
              engine.num_sources(), engine.catalog().size());

  // 2. A federated query: drugs and their side effects, two sources.
  const std::string query = R"(
PREFIX db: <http://lslod.example.org/drugbank/vocab#>
PREFIX sider: <http://lslod.example.org/sider/vocab#>
SELECT ?name ?effect WHERE {
  ?drug a db:Drug ; db:name ?name .
  ?se a sider:SideEffect ; sider:drug ?drug ; sider:effectName ?effect .
  FILTER STRSTARTS(?name, "drug00")
} LIMIT 10)";

  // 3. Plan it physical-design-aware on a slow network and show the QEP.
  fed::PlanOptions options;
  options.mode = fed::PlanMode::kPhysicalDesignAware;
  options.network = net::NetworkProfile::Gamma2();

  auto plan = engine.Plan(query, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- query execution plan --\n%s", plan->Explain().c_str());

  // 4. Open a streaming session and print answers as they arrive. A
  //    deadline guards the whole query: past it, the stream terminates
  //    with kDeadlineExceeded and every source scan is torn down.
  fed::QueryRequest request = fed::QueryRequest::Text(query, options);
  request.timeout = std::chrono::seconds(30);
  auto stream = engine.CreateSession(std::move(request));
  if (!stream.ok()) {
    std::fprintf(stderr, "session error: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- answers (streaming) --\n");
  // NextBatch is the primary pull API: each call delivers the morsel of
  // rows that became available together (row-at-a-time Next(&row) remains
  // as a compatibility shim over it).
  fed::RowBatch batch;
  size_t rows = 0;
  while ((*stream)->NextBatch(&batch)) {
    for (rdf::Binding& row : batch) {
      std::printf("  [%5.3fs] %s -> %s\n",
                  (*stream)->trace().timestamps[rows++],
                  row.at("name").value().c_str(),
                  row.at("effect").value().c_str());
    }
  }
  Status status = (*stream)->Finish();
  if (!status.ok()) {
    std::fprintf(stderr, "execution error: %s\n", status.ToString().c_str());
    return 1;
  }
  const fed::AnswerTrace& trace = (*stream)->trace();
  std::printf("\n%zu answers in %.3fs (first after %.3fs)\n", rows,
              trace.completion_seconds, trace.TimeToFirst());
  std::printf("rows shipped from sources: %llu (simulated delay %.1f ms)\n",
              static_cast<unsigned long long>(
                  (*stream)->stats().messages_transferred),
              (*stream)->stats().network_delay_ms);

  // 5. The classic blocking call is still there — it is a shim over a
  //    drained session and returns the materialized QueryAnswer.
  auto answer = engine.Execute(query, options);
  if (!answer.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }
  std::printf("blocking shim agrees: %zu answers\n", answer->rows.size());
  return 0;
}
