// The paper's Figure 1, end to end: one SPARQL query, two query execution
// plans. Shows how physical-design awareness changes where operations run
// and what SQL the relational sources receive.
//
//   $ ./examples/motivating_example

#include <cstdio>

#include "fed/engine.h"
#include "lslod/generator.h"
#include "lslod/queries.h"
#include "lslod/vocab.h"
#include "wrapper/sql_wrapper.h"

using namespace lakefed;

int main() {
  lslod::LakeConfig config;
  config.scale = 0.2;
  auto lake = lslod::BuildLake(config);
  if (!lake.ok()) {
    std::fprintf(stderr, "error: %s\n", lake.status().ToString().c_str());
    return 1;
  }
  fed::FederatedEngine& engine = *(*lake)->engine;
  const lslod::BenchmarkQuery& fig1 = lslod::MotivatingExampleQuery();

  std::printf("-- (a) SPARQL query --\n%s\n", fig1.sparql.c_str());
  std::printf(
      "\nStar-shaped sub-queries: the gene star and the disease star live "
      "in Diseasome; the probeset star lives in Affymetrix. The species "
      "attribute is NOT indexed (values in >15%% of the records), the "
      "gene join attribute IS indexed.\n");

  for (fed::PlanMode mode : {fed::PlanMode::kPhysicalDesignUnaware,
                             fed::PlanMode::kPhysicalDesignAware}) {
    fed::PlanOptions options;
    options.mode = mode;
    options.network = net::NetworkProfile::Gamma2();

    const char* label = mode == fed::PlanMode::kPhysicalDesignUnaware
                            ? "(b) physical-design-unaware QEP"
                            : "(c) physical-design-aware QEP";
    auto plan = engine.Plan(fig1.sparql, options);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan error: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    std::printf("\n-- %s --\n%s", label, plan->Explain().c_str());

    auto answer = engine.Execute(fig1.sparql, options);
    if (!answer.ok()) {
      std::fprintf(stderr, "execution error: %s\n",
                   answer.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "executed: %zu answers in %.3fs; %llu rows shipped from sources\n",
        answer->rows.size(), answer->trace.completion_seconds,
        static_cast<unsigned long long>(answer->stats.messages_transferred));

    auto* diseasome = dynamic_cast<wrapper::SqlWrapper*>(
        engine.wrapper(lslod::kDiseasome));
    auto* affymetrix = dynamic_cast<wrapper::SqlWrapper*>(
        engine.wrapper(lslod::kAffymetrix));
    if (diseasome != nullptr) {
      std::printf("SQL -> diseasome:  %s\n", diseasome->last_sql().c_str());
    }
    if (affymetrix != nullptr) {
      std::printf("SQL -> affymetrix: %s\n", affymetrix->last_sql().c_str());
    }
  }
  std::printf(
      "\nNote how (c) merges the two Diseasome stars into ONE SQL join "
      "(Heuristic 1) while the species filter stays at the engine in both "
      "plans (Heuristic 2: attribute not indexed).\n");
  return 0;
}
