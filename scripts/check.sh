#!/usr/bin/env bash
# Full pre-merge check: tier-1 build + test suite, then a ThreadSanitizer
# build running the federation and robustness suites (the streaming
# executor, retry/failover path and circuit breaker are heavily
# multi-threaded — tsan is the test that counts there).
#
#   scripts/check.sh               # all phases
#   SKIP_TSAN=1 scripts/check.sh   # skip both sanitizer phases
#   SKIP_ASAN=1 scripts/check.sh   # skip only the AddressSanitizer phase
#   SKIP_OVERHEAD=1 scripts/check.sh   # skip the metrics-overhead guard
#
# Build trees: build/ (tier-1), build-tsan/ and build-asan/ (sanitized).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${SKIP_OVERHEAD:-0}" == "1" ]]; then
  echo "== SKIP_OVERHEAD=1: skipping metrics-overhead guard =="
else
  echo "== metrics-overhead guard: micro_fed_operators with metrics on/off =="
  # The observability layer promises cheap collection: compare the floor
  # (min across repetitions — the classic microbench denoiser) of the
  # end-to-end federated join with metrics on vs off, and fail when the
  # metrics-on variant costs > 5%. Shared-machine noise drifts a few
  # percent either way, so the guard takes the best of up to 3 measurement
  # attempts — a real regression fails all of them.
  OVERHEAD_OK=0
  for attempt in 1 2 3; do
    BENCH_CSV="$(build/bench/micro_fed_operators \
        --benchmark_filter='BM_FederatedJoinThroughput(NoMetrics)?/40$' \
        --benchmark_repetitions=8 --benchmark_format=csv 2>/dev/null)"
    ON_MS="$(echo "$BENCH_CSV" | awk -F, \
        '$1 == "\"BM_FederatedJoinThroughput/40\"" {if (!m || $3 < m) m = $3}
         END {print m}')"
    OFF_MS="$(echo "$BENCH_CSV" | awk -F, \
        '$1 == "\"BM_FederatedJoinThroughputNoMetrics/40\"" {if (!m || $3 < m) m = $3}
         END {print m}')"
    if [[ -z "$ON_MS" || -z "$OFF_MS" ]]; then
      echo "error: could not parse bench output:"
      echo "$BENCH_CSV"
      exit 1
    fi
    DELTA_PCT="$(awk -v on="$ON_MS" -v off="$OFF_MS" \
        'BEGIN {printf "%.1f", (on - off) / off * 100}')"
    echo "attempt ${attempt}: metrics on ${ON_MS} ms, off ${OFF_MS} ms," \
         "delta ${DELTA_PCT}%"
    if awk -v d="$DELTA_PCT" 'BEGIN {exit !(d <= 5.0)}'; then
      OVERHEAD_OK=1
      break
    fi
  done
  if [[ "$OVERHEAD_OK" != "1" ]]; then
    echo "error: metrics collection consistently costs > 5%"
    exit 1
  fi
fi

echo "== profiler smoke: obs suites + tiny paper-grid run =="
# The obs-labelled suites cover the profiler/trace-export units; the grid
# driver then runs end-to-end at tiny scale and must emit a parseable
# 40-cell BENCH_paper_grid.json plus a loadable Chrome trace.
ctest --test-dir build --output-on-failure -j "$JOBS" -L obs
(cd build/bench && \
 LAKEFED_BENCH_SCALE=0.05 LAKEFED_TIME_SCALE=0.001 ./bench_paper_grid \
     >/dev/null)
python3 - <<'EOF'
import json
with open("build/bench/BENCH_paper_grid.json") as f:
    grid = json.load(f)
assert grid["bench"] == "paper_grid", grid.get("bench")
assert len(grid["results"]) == 40, len(grid["results"])
assert {"scale", "time_scale", "seed"} <= grid["config"].keys()
with open("build/bench/BENCH_paper_grid_trace.json") as f:
    trace = json.load(f)
assert trace["traceEvents"], "empty Chrome trace"
print("paper-grid JSON ok: 40 cells, trace has",
      len(trace["traceEvents"]), "events")
EOF

echo "== batch-size sweep smoke: identical answers at morsel 1/64/1024 =="
# The morsel size is a pure exchange knob — Q1 must report the same
# answer count whether rows travel one at a time or 1024 per batch.
SWEEP_BASE=""
for b in 1 64 1024; do
  COUNT="$(printf '.batch %s\n.run Q1\n.quit\n' "$b" \
      | build/examples/lakefed_shell 2>/dev/null \
      | grep -oE '^[0-9]+ answer' | head -1 | awk '{print $1}')"
  echo "batch_size ${b}: ${COUNT:-<none>} answers"
  if [[ -z "$COUNT" || "$COUNT" == "0" ]]; then
    echo "error: batch-size sweep produced no answers at batch ${b}"
    exit 1
  fi
  if [[ -z "$SWEEP_BASE" ]]; then
    SWEEP_BASE="$COUNT"
  elif [[ "$COUNT" != "$SWEEP_BASE" ]]; then
    echo "error: answer count diverges across batch sizes" \
         "(${SWEEP_BASE} vs ${COUNT} at batch ${b})"
    exit 1
  fi
done

echo "== service smoke: bench_service N=100 + JSON schema =="
# The service bench replays a mixed Q1..Q5 workload through the
# multi-tenant QueryService on the shared worker pool. The binary itself
# fails on any wrong/partial/duplicated answer; here we also check the
# emitted JSON and that the thread count stayed bounded (pool + run slots,
# not O(sessions x operators)).
(cd build/bench && \
 LAKEFED_BENCH_SCALE=0.05 LAKEFED_TIME_SCALE=0.001 \
 LAKEFED_SERVICE_SESSIONS=100 ./bench_service >/dev/null)
python3 - <<'EOF'
import json
with open("build/bench/BENCH_service.json") as f:
    doc = json.load(f)
assert doc["bench"] == "service", doc.get("bench")
assert len(doc["results"]) == 1, len(doc["results"])
row = doc["results"][0]
required = {"sessions", "ok", "shed", "wall_s", "throughput_qps",
            "p50_ms", "p95_ms", "p99_ms", "threads_peak", "workers",
            "io_threads", "run_slots", "slow_queries_recorded",
            "querylog_dropped"}
assert required <= row.keys(), required - row.keys()
assert row["ok"] + row["shed"] == row["sessions"] == 100, row
# Flight recorder off in this run: both counters must be pinned to 0.
assert row["slow_queries_recorded"] == 0 == row["querylog_dropped"], row
bound = row["workers"] + row["io_threads"] + row["run_slots"] + 8
assert row["threads_peak"] <= bound, (row["threads_peak"], bound)
print("service JSON ok: 100 sessions, threads peak",
      row["threads_peak"], "<=", bound)
EOF

echo "== monitor smoke: live /metrics scrape during bench_service =="
# The exporter runs inside the QueryService for the whole wave; a scraper
# polls until /healthz answers, then validates the Prometheus exposition
# (every sample value must parse, scheduler families must be present), the
# /statusz JSON and the flight-recorder JSONL while queries are in flight.
MONITOR_PORT=19309
(cd build/bench && \
 LAKEFED_BENCH_SCALE=0.05 LAKEFED_TIME_SCALE=0.001 \
 LAKEFED_SERVICE_SESSIONS=3000 LAKEFED_SERVICE_QUERYLOG=1 \
 LAKEFED_SERVICE_MONITOR_PORT="$MONITOR_PORT" ./bench_service >/dev/null) &
MONITOR_BENCH_PID=$!
MONITOR_PORT="$MONITOR_PORT" python3 - <<'EOF'
import json, os, time, urllib.request

base = "http://127.0.0.1:%d" % int(os.environ["MONITOR_PORT"])

def get(path):
    with urllib.request.urlopen(base + path, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), \
               resp.read().decode()

deadline = time.time() + 120
while True:
    try:
        status, _, body = get("/healthz")
        break
    except OSError:
        if time.time() > deadline:
            raise SystemExit("error: exporter never answered /healthz")
        time.sleep(0.05)
assert status == 200 and "ok" in body, (status, body)

status, ctype, text = get("/metrics")
assert status == 200 and ctype.startswith("text/plain"), (status, ctype)
families = set()
for line in text.splitlines():
    if line.startswith("# TYPE "):
        families.add(line.split()[2])
    elif line and not line.startswith("#"):
        float(line.rsplit(" ", 1)[1])  # every sample value must parse
assert any(f.startswith("lakefed_") for f in families), families
assert any("svc_scheduler" in f for f in families), families

status, _, text = get("/statusz")
assert status == 200, status
doc = json.loads(text)
assert {"build", "uptime_s", "pool", "query_log"} <= doc.keys(), doc.keys()
assert doc["query_log"]["enabled"] is True, doc["query_log"]

status, _, text = get("/queryz")
assert status == 200, status
for line in filter(None, text.splitlines()):
    rec = json.loads(line)
    assert {"id", "fingerprint", "total_ms"} <= rec.keys(), rec.keys()

print("monitor scrape ok: %d metric families live mid-run" % len(families))
EOF
wait "$MONITOR_BENCH_PID"

echo "== chaos smoke: seeded soak + hedge A/B, digests must hold =="
# A short fixed-seed run of the chaos bench: mixed Q1..Q5 under per-source
# error/slow-spike injection on both dataflows plus the hedged-vs-unhedged
# replica race. The binary exits nonzero on any unflagged wrong digest, on
# a hedge p99 speedup < 2x, and its watchdog aborts on a hang; here we also
# check the JSON and the soak thread bound.
(cd build/bench && \
 LAKEFED_BENCH_SCALE=0.05 LAKEFED_TIME_SCALE=0.001 LAKEFED_CHAOS_SEED=7 \
 LAKEFED_CHAOS_SESSIONS=60 LAKEFED_CHAOS_AB_SESSIONS=25 \
 LAKEFED_CHAOS_SLOW_MS=15 ./bench_chaos >/dev/null)
python3 - <<'EOF'
import json
with open("build/bench/BENCH_chaos.json") as f:
    doc = json.load(f)
assert doc["bench"] == "chaos", doc.get("bench")
soak = [r for r in doc["results"] if r["phase"] == "soak"]
assert {r["dataflow"] for r in soak} == {"threads", "scheduler"}, soak
for r in soak:
    assert r["wrong"] == 0 and r["errors"] == 0, r
    assert r["ok"] + r["degraded"] == r["sessions"] == 60, r
sched = next(r for r in soak if r["dataflow"] == "scheduler")
assert sched["threads_peak"] <= 64, sched["threads_peak"]
ab = [r for r in doc["results"] if r["phase"] == "hedge_ab_summary"]
assert len(ab) == 2 and all(r["p99_speedup"] >= 2.0 for r in ab), ab
print("chaos JSON ok: 0 wrong digests on both dataflows, hedge p99 speedup",
      ", ".join("%.1fx" % r["p99_speedup"] for r in ab))
EOF

echo "== cache smoke: repeat-query workload, hit rates + JSON schema =="
# The plan-cache bench replays Q1..Q5 cold/warm against the engine caches
# and then a 1000-request mix through the QueryService with caching on.
# The binary itself aborts on any answer divergence from the cache-off
# baseline, on a preparation-time reduction < 5x, or on a plan-cache hit
# rate < 90%; here we also check the emitted JSON.
(cd build/bench && \
 LAKEFED_BENCH_SCALE=0.05 LAKEFED_TIME_SCALE=0.001 ./bench_plan_cache \
     >/dev/null)
python3 - <<'EOF'
import json
with open("build/bench/BENCH_plan_cache.json") as f:
    doc = json.load(f)
assert doc["bench"] == "plan_cache", doc.get("bench")
repeats = [r for r in doc["results"] if r["phase"] == "repeat"]
assert {r["query"] for r in repeats} == {"Q1", "Q2", "Q3", "Q4", "Q5"}, repeats
for r in repeats:
    assert r["answers_match_baseline"] is True, r
service = [r for r in doc["results"] if r["phase"] == "service"]
assert len(service) == 1, doc["results"]
row = service[0]
required = {"requests", "completed", "wall_s", "plan_hit_rate",
            "parsed_hit_rate", "sub_answer_hit_rate", "prep_reduction_x"}
assert required <= row.keys(), required - row.keys()
assert row["completed"] == row["requests"] == 1000, row
assert row["plan_hit_rate"] >= 0.9, row["plan_hit_rate"]
assert row["prep_reduction_x"] >= 5.0, row["prep_reduction_x"]
print("plan-cache JSON ok: plan hit rate %.1f%%, prep reduction %.1fx"
      % (100 * row["plan_hit_rate"], row["prep_reduction_x"]))
EOF

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  echo "== SKIP_TSAN=1: skipping ThreadSanitizer phase =="
  exit 0
fi

echo "== tsan: LAKEFED_SANITIZE=thread build + fed/robustness tests =="
cmake -B build-tsan -S . -DLAKEFED_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
# Robustness-labelled suites (fault injection, retry, failover, fuzz) plus
# every fed_* suite (sessions, executor, engine, batched exchange) and the
# batched queue primitives under tsan.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L robustness
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R '^Fed'
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'BlockingQueueBatch'
# The shared worker-pool scheduler and the multi-tenant service (svc label:
# work-stealing, task wakeups, admission control, the >=64-session stress
# mix) plus the queue listener primitives they are wired to.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L svc
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'BlockingQueueListener'
# The reuse layer (sharded LRU caches, epoch stamps, concurrent sessions
# populating and replaying sub-answers) under tsan.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L cache
# The monitoring plane (HTTP exporter scraping live registries, meta-source
# snapshots, the query-log ring): scrapes race queries by design.
# --no-tests=error: a label typo must fail loudly, not skip silently.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L monitor \
    --no-tests=error

if [[ "${SKIP_ASAN:-0}" == "1" ]]; then
  echo "== SKIP_ASAN=1: skipping AddressSanitizer phase =="
  exit 0
fi

echo "== asan: LAKEFED_SANITIZE=address build + robustness tests =="
# The hedge/cancellation machinery hands staged rows and tokens across
# racing threads — asan over the robustness label catches use-after-free
# on the loser's teardown path that tsan has no opinion about.
cmake -B build-asan -S . -DLAKEFED_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L robustness
# Exporter buffers + query-log ring + meta-source snapshot allocation under
# asan: the listener hands response buffers across the accept thread.
ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L monitor \
    --no-tests=error

echo "== all checks passed =="
