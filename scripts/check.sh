#!/usr/bin/env bash
# Full pre-merge check: tier-1 build + test suite, then a ThreadSanitizer
# build running the federation and robustness suites (the streaming
# executor, retry/failover path and circuit breaker are heavily
# multi-threaded — tsan is the test that counts there).
#
#   scripts/check.sh               # both phases
#   SKIP_TSAN=1 scripts/check.sh   # tier-1 only
#
# Build trees: build/ (tier-1) and build-tsan/ (sanitized).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  echo "== SKIP_TSAN=1: skipping ThreadSanitizer phase =="
  exit 0
fi

echo "== tsan: LAKEFED_SANITIZE=thread build + fed/robustness tests =="
cmake -B build-tsan -S . -DLAKEFED_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"
# Robustness-labelled suites (fault injection, retry, failover, fuzz) plus
# every fed_* suite (sessions, executor, engine) under tsan.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L robustness
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R '^Fed'

echo "== all checks passed =="
